// Command scenarios runs the named scenario library and the generative
// sweep (internal/scenario): deterministic churn + disclosure + adversary
// timelines on virtual time, assessed by the core monitor at every event.
//
// Usage:
//
//	scenarios list                       # registry + generator profiles
//	scenarios run [name...] -seed 42     # summary table (or -json / -csv)
//	scenarios run -live -seed 42 -json   # the live-loop scenarios only
//	scenarios sweep -n 1000 -seed 42     # generate, run, check invariants
//	scenarios gen -profile churn-heavy -index 3   # print one timeline JSON
//	scenarios replay timeline.json -json # run a timeline file's trace
//	scenarios shrink timeline.json       # minimize a violating timeline
//
// The pre-subcommand spellings keep working: -list, -run name -seed 42
// -json, -live, -parallel N and -sweep N are deprecated aliases for the
// subcommands above, so existing CI invocations do not change.
//
// Determinism contract: identical (selection, -seed) produce byte-identical
// output for every -parallel setting. Per-scenario seeds derive from
// (seed, scenario name) — never from scheduling — and parallel runs buffer
// per-scenario output and print in selection order. Generated timelines are
// pure functions of (profile, seed, index). CI enforces both by diffing
// repeated runs.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/scenario"

	// The live-loop library registers the live-* scenarios at init time.
	_ "repro/internal/liveloop"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scenarios: ")
	if len(os.Args) > 1 {
		args := os.Args[2:]
		switch os.Args[1] {
		case "list":
			cmdList(args)
			return
		case "run":
			cmdRun(args)
			return
		case "sweep":
			cmdSweep(args)
			return
		case "gen":
			cmdGen(args)
			return
		case "replay":
			cmdReplay(args)
			return
		case "shrink":
			cmdShrink(args)
			return
		}
	}
	legacyMain()
}

// legacyMain is the pre-subcommand flag surface, kept verbatim so existing
// invocations (the CI determinism job among them) run unchanged. -sweep N
// is the flag spelling of the sweep subcommand.
func legacyMain() {
	var (
		list     = flag.Bool("list", false, "deprecated alias for the list subcommand")
		run      = flag.String("run", "all", "comma-separated scenario names, or 'all'")
		seed     = flag.Int64("seed", 7, "base seed; per-scenario seeds derive from (seed, name)")
		jsonOut  = flag.Bool("json", false, "emit the trace as JSON lines")
		csvOut   = flag.Bool("csv", false, "emit the trace as CSV")
		live     = flag.Bool("live", false, "run only the live-loop scenarios (tag 'live')")
		parallel = flag.Int("parallel", 1, "concurrent scenario runs (0 = all cores, 1 = serial)")
		sweep    = flag.Int("sweep", 0, "deprecated alias for the sweep subcommand: generate and check N timelines")
	)
	flag.Parse()
	if *list {
		fmt.Print(listTable().String())
		return
	}
	if *sweep > 0 {
		doSweep(scenario.SweepOptions{Runs: *sweep, Seed: *seed, Workers: workersFor(*parallel)}, "", "")
		return
	}
	mode, err := pickMode(*jsonOut, *csvOut)
	if err != nil {
		log.Fatal(err)
	}
	doRun(*run, *live, *seed, *parallel, mode)
}

// --- shared flag groups ---

// seedFlag registers the base-seed flag common to every subcommand.
func seedFlag(fs *flag.FlagSet) *int64 {
	return fs.Int64("seed", 7, "base seed; everything derives from (seed, name)")
}

// parallelFlag registers the worker-count flag shared by run and sweep.
func parallelFlag(fs *flag.FlagSet) *int {
	return fs.Int("parallel", 1, "concurrent runs (0 = all cores, 1 = serial)")
}

// traceFlags registers the output-encoding flags shared by run and replay.
func traceFlags(fs *flag.FlagSet) (jsonOut, csvOut *bool) {
	return fs.Bool("json", false, "emit the trace as JSON lines"),
		fs.Bool("csv", false, "emit the trace as CSV")
}

func pickMode(jsonOut, csvOut bool) (renderMode, error) {
	if jsonOut && csvOut {
		return modeSummary, fmt.Errorf("-json and -csv are mutually exclusive")
	}
	switch {
	case jsonOut:
		return modeJSON, nil
	case csvOut:
		return modeCSV, nil
	default:
		return modeSummary, nil
	}
}

func workersFor(parallel int) int {
	if parallel < 0 {
		log.Fatalf("-parallel %d is negative", parallel)
	}
	if parallel == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallel
}

func parseFlags(fs *flag.FlagSet, args []string) {
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: scenarios %s [flags]\n", fs.Name())
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
}

// parseMixed parses flags and positional operands in any order ("replay
// file.json -json" and "replay -json file.json" both work; stock flag
// parsing stops at the first operand). Returns the positionals in order.
func parseMixed(fs *flag.FlagSet, args []string) []string {
	parseFlags(fs, args)
	var positional []string
	for fs.NArg() > 0 {
		rest := fs.Args()
		positional = append(positional, rest[0])
		if err := fs.Parse(rest[1:]); err != nil {
			os.Exit(2)
		}
	}
	return positional
}

// --- subcommands ---

// cmdList prints the scenario registry and the generator profiles.
func cmdList(args []string) {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	parseFlags(fs, args)
	fmt.Print(listTable().String())
	fmt.Print(profileTable().String())
}

// cmdRun runs registered scenarios: positional names (or -run) select, and
// the shared trace flags pick the encoding.
func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	run := fs.String("run", "all", "comma-separated scenario names, or 'all'")
	live := fs.Bool("live", false, "run only the live-loop scenarios (tag 'live')")
	seed := seedFlag(fs)
	parallel := parallelFlag(fs)
	jsonOut, csvOut := traceFlags(fs)
	names := parseMixed(fs, args)
	selection := *run
	if len(names) > 0 {
		selection = strings.Join(names, ",")
	}
	mode, err := pickMode(*jsonOut, *csvOut)
	if err != nil {
		log.Fatal(err)
	}
	doRun(selection, *live, *seed, *parallel, mode)
}

// cmdSweep generates, runs and invariant-checks N timelines across the
// generator profiles, printing the aggregate report JSON. Exit status 1
// when any invariant is violated (after the report and the violations are
// printed), so CI can gate on a clean sweep.
func cmdSweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	n := fs.Int("n", 200, "total generated timelines across the selected profiles")
	seed := seedFlag(fs)
	parallel := parallelFlag(fs)
	profiles := fs.String("profiles", "", "comma-separated generator profiles (default all)")
	out := fs.String("out", "", "write the report JSON to this file instead of stdout")
	shrinkDir := fs.String("shrink-dir", "", "shrink each violating timeline and write the minimal JSON artifacts here")
	parseFlags(fs, args)
	opts := scenario.SweepOptions{Runs: *n, Seed: *seed, Workers: workersFor(*parallel)}
	if *profiles != "" {
		for _, p := range strings.Split(*profiles, ",") {
			if p = strings.TrimSpace(p); p != "" {
				opts.Profiles = append(opts.Profiles, p)
			}
		}
	}
	doSweep(opts, *out, *shrinkDir)
}

func doSweep(opts scenario.SweepOptions, out, shrinkDir string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	report, err := scenario.Sweep(ctx, opts)
	if err != nil {
		log.Fatal(err)
	}
	b, err := report.MarshalIndent()
	if err != nil {
		log.Fatal(err)
	}
	if out != "" {
		if err := os.WriteFile(out, b, 0o644); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Print(string(b))
	}
	if len(report.Violating) == 0 {
		return
	}
	for _, run := range report.Violating {
		for _, v := range run.Violations {
			fmt.Fprintf(os.Stderr, "scenarios: %s violates %s at seq %d (%s): %s\n",
				run.Name, v.Invariant, v.Seq, v.T, v.Detail)
		}
		if shrinkDir != "" {
			writeShrunk(run, opts.Seed, shrinkDir)
		}
	}
	os.Exit(1)
}

// writeShrunk regenerates one violating run's timeline, shrinks it against
// its first violated invariant, and writes the minimal artifact.
func writeShrunk(run scenario.SweepRun, seed int64, dir string) {
	p, ok := scenario.LookupProfile(run.Profile)
	if !ok {
		log.Fatalf("violating run %s names unknown profile %q", run.Name, run.Profile)
	}
	target, ok := scenario.InvariantByName(run.Violations[0].Invariant)
	if !ok {
		log.Fatalf("violating run %s names unknown invariant %q", run.Name, run.Violations[0].Invariant)
	}
	res, err := scenario.Shrink(p.Generate(seed, run.Index), seed, target)
	if err != nil {
		log.Fatal(err)
	}
	b, err := res.Timeline.MarshalIndent()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, run.Name+".min.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "scenarios: shrunk %s: %d -> %d events (%d candidate runs) -> %s\n",
		run.Name, res.OriginalEvents, res.Events, res.Runs, path)
}

// cmdGen prints one generated timeline, addressed by (profile, seed,
// index) — the exact timeline a sweep would run at that slot.
func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	profile := fs.String("profile", "", "generator profile (see scenarios list)")
	seed := seedFlag(fs)
	index := fs.Int("index", 0, "generation index within the profile")
	out := fs.String("out", "", "write the timeline JSON to this file instead of stdout")
	parseFlags(fs, args)
	p, ok := scenario.LookupProfile(*profile)
	if !ok {
		log.Fatalf("unknown profile %q; available: %s", *profile, strings.Join(scenario.ProfileNames(), ", "))
	}
	b, err := p.Generate(*seed, *index).MarshalIndent()
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(string(b))
}

// cmdReplay runs a timeline JSON file and renders its trace — the replay
// half of the "every artifact is a runnable scenario" contract.
func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	seed := seedFlag(fs)
	jsonOut, csvOut := traceFlags(fs)
	files := parseMixed(fs, args)
	if len(files) != 1 {
		log.Fatal("replay needs exactly one timeline.json argument")
	}
	mode, err := pickMode(*jsonOut, *csvOut)
	if err != nil {
		log.Fatal(err)
	}
	tl := loadTimeline(files[0])
	res, err := scenario.Run(tl.Def(), *seed)
	if err != nil {
		log.Fatal(err)
	}
	outStr, err := render([]*scenario.Result{res}, mode)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(outStr)
}

// cmdShrink minimizes a violating timeline file against one invariant and
// writes the minimal artifact.
func cmdShrink(args []string) {
	fs := flag.NewFlagSet("shrink", flag.ContinueOnError)
	seed := seedFlag(fs)
	invariant := fs.String("invariant", "never-unsafe", "target invariant the timeline violates")
	out := fs.String("out", "", "write the minimal timeline JSON to this file instead of stdout")
	files := parseMixed(fs, args)
	if len(files) != 1 {
		log.Fatal("shrink needs exactly one timeline.json argument")
	}
	target, ok := scenario.InvariantByName(*invariant)
	if !ok {
		log.Fatalf("unknown invariant %q", *invariant)
	}
	tl := loadTimeline(files[0])
	res, err := scenario.Shrink(tl, *seed, target)
	if err != nil {
		log.Fatal(err)
	}
	b, err := res.Timeline.MarshalIndent()
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Print(string(b))
	}
	fmt.Fprintf(os.Stderr, "scenarios: shrunk %s against %s: %d -> %d events (%d candidate runs)\n",
		res.Timeline.Name, target.Name, res.OriginalEvents, res.Events, res.Runs)
}

func loadTimeline(path string) *scenario.Timeline {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	tl, err := scenario.ParseTimeline(data)
	if err != nil {
		log.Fatal(err)
	}
	return tl
}

// doRun is the shared run path behind the run subcommand and the legacy
// flag surface.
func doRun(run string, live bool, seed int64, parallel int, mode renderMode) {
	defs, err := selectDefs(run)
	if err != nil {
		log.Fatal(err)
	}
	if live {
		defs = filterTag(defs, "live")
		if len(defs) == 0 {
			log.Fatal("-live selected no scenarios; none of the selection carries the live tag")
		}
	}
	workers := workersFor(parallel)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	results, err := runAll(ctx, defs, seed, workers)
	if err != nil {
		log.Fatal(err)
	}
	// On interrupt the workers stop scheduling new scenarios; the traces
	// of every scenario that did complete are still flushed before exiting
	// non-zero, so a cut-short run never discards finished work.
	done := results[:0]
	for _, res := range results {
		if res != nil {
			done = append(done, res)
		}
	}
	out, err := render(done, mode)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
	if ctx.Err() != nil {
		log.Fatalf("interrupted: %d of %d scenarios completed", len(done), len(defs))
	}
}

// selectDefs resolves a selection against the registry. Unknown names are
// hard errors listing what exists, so a typo cannot silently skip a
// scenario.
func selectDefs(run string) ([]scenario.Def, error) {
	if strings.EqualFold(strings.TrimSpace(run), "all") || strings.TrimSpace(run) == "" {
		return scenario.All(), nil
	}
	var out []scenario.Def
	seen := make(map[string]bool)
	for _, raw := range strings.Split(run, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		d, ok := scenario.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q; available: %s",
				name, strings.Join(scenario.Names(), ", "))
		}
		if !seen[d.Name] {
			seen[d.Name] = true
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run selected no scenarios; available: %s",
			strings.Join(scenario.Names(), ", "))
	}
	return out, nil
}

// filterTag keeps the scenarios carrying the tag, in selection order.
func filterTag(defs []scenario.Def, tag string) []scenario.Def {
	var out []scenario.Def
	for _, d := range defs {
		for _, t := range d.Tags {
			if strings.EqualFold(t, tag) {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

// runAll executes the selected scenarios on up to workers goroutines and
// returns results in selection order. Each scenario's trace depends only
// on (seed, name), so the worker count cannot change any output byte.
// When ctx is cancelled (SIGINT/SIGTERM) no further scenarios start;
// in-flight ones finish and their slots are filled, leaving the rest nil.
func runAll(ctx context.Context, defs []scenario.Def, seed int64, workers int) ([]*scenario.Result, error) {
	if workers > len(defs) {
		workers = len(defs)
	}
	results := make([]*scenario.Result, len(defs))
	errs := make([]error, len(defs))
	if workers <= 1 {
		for i, d := range defs {
			if ctx.Err() != nil {
				break
			}
			results[i], errs[i] = scenario.Run(d, seed)
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, d := range defs {
			wg.Add(1)
			go func(i int, d scenario.Def) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if ctx.Err() != nil {
					return
				}
				results[i], errs[i] = scenario.Run(d, seed)
			}(i, d)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

type renderMode int

const (
	modeSummary renderMode = iota
	modeJSON
	modeCSV
)

// render formats results in their (deterministic) selection order.
func render(results []*scenario.Result, mode renderMode) (string, error) {
	var b strings.Builder
	switch mode {
	case modeJSON:
		for _, res := range results {
			for _, rec := range res.Records {
				line, err := rec.JSON()
				if err != nil {
					return "", err
				}
				b.WriteString(line)
				b.WriteByte('\n')
			}
		}
	case modeCSV:
		w := csv.NewWriter(&b)
		if err := w.Write(scenario.CSVHeader()); err != nil {
			return "", err
		}
		for _, res := range results {
			for _, rec := range res.Records {
				if err := w.Write(rec.CSVRow()); err != nil {
					return "", err
				}
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return "", err
		}
	default:
		tab := metrics.NewTable("scenario runs",
			"scenario", "seed", "records", "events", "final n", "min H", "final H",
			"max Σf", "at", "unsafe", "adv best", "adv breaks",
			"checks", "diverge", "breach", "max TTR", "view", "rotations")
		for _, res := range results {
			s := res.Summary()
			tab.AddRowf(s.Scenario, fmt.Sprintf("%d", s.Seed), s.Records, s.Events,
				s.FinalReplicas,
				fmt.Sprintf("%.3f", s.MinEntropy), fmt.Sprintf("%.3f", s.FinalEntropy),
				fmt.Sprintf("%.3f", s.MaxComp), formatAt(s.MaxCompAt), s.UnsafeRecords,
				fmt.Sprintf("%.3f", s.AdvBestFrac), fmt.Sprintf("%t", s.AdvBreaks),
				s.Checks, s.Divergences, s.Breaches, formatTTR(s),
				s.FinalView, s.ViewChanges)
		}
		tab.AddNote("H = entropy (bits); Σf = deduplicated compromised power fraction; re-run with -json or -csv for the full trace")
		tab.AddNote("checks/diverge/breach/TTR come from the live loop (scenarios tagged 'live'); - = no live harness or no recovery")
		tab.AddNote("view/rotations track BFT primary rotation (live scenarios with a view timeout); 0 = fixed primary")
		b.WriteString(tab.String())
	}
	return b.String(), nil
}

// formatAt renders the worst-compromise instant compactly in hours.
func formatAt(d time.Duration) string {
	return fmt.Sprintf("%gh", d.Hours())
}

// formatTTR renders the slowest recovery span, "-" when nothing recovered.
func formatTTR(s scenario.Summary) string {
	if s.Recoveries == 0 {
		return "-"
	}
	return s.MaxTTR.String()
}

// listTable renders the registry index.
func listTable() *metrics.Table {
	tab := metrics.NewTable("registered scenarios", "name", "title", "tags", "horizon")
	for _, d := range scenario.All() {
		tab.AddRowf(d.Name, d.Title, strings.Join(d.Tags, ","), d.Horizon.String())
	}
	tab.AddNote("run a subset with: scenarios run name name; tags: %s", strings.Join(scenario.Tags(), ", "))
	return tab
}

// profileTable renders the generator profile index.
func profileTable() *metrics.Table {
	tab := metrics.NewTable("generator profiles", "profile", "family")
	for _, p := range scenario.Profiles() {
		tab.AddRowf(p.Name, p.Title)
	}
	tab.AddNote("sweep them with: scenarios sweep -n 200 -seed 42; one timeline with: scenarios gen -profile name -index i")
	return tab
}
