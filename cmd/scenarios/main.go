// Command scenarios runs the named scenario library (internal/scenario):
// deterministic churn + disclosure + adversary timelines on virtual time,
// assessed by the core monitor at every event. Output is a summary table,
// a JSON-lines trace (-json) or a CSV trace (-csv).
//
// Usage:
//
//	scenarios -list                     # enumerate names, titles and tags
//	scenarios                           # run all scenarios, summary table
//	scenarios -run flash-churn -json    # one scenario's trace as JSON lines
//	scenarios -run all -seed 42 -json   # the CI determinism workload
//	scenarios -live -seed 42 -json      # the live-loop scenarios only
//	scenarios -csv -parallel 0          # CSV trace, all cores
//
// Determinism contract: identical (-run selection, -seed) produce
// byte-identical output for every -parallel setting. Per-scenario seeds
// derive from (seed, scenario name) — never from scheduling — and
// parallel runs buffer per-scenario output and print in selection order.
// CI enforces this by diffing two -run all -seed 42 -json runs.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/scenario"

	// The live-loop library registers the live-* scenarios at init time.
	_ "repro/internal/liveloop"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scenarios: ")
	var (
		list     = flag.Bool("list", false, "list registered scenarios and exit")
		run      = flag.String("run", "all", "comma-separated scenario names, or 'all'")
		seed     = flag.Int64("seed", 7, "base seed; per-scenario seeds derive from (seed, name)")
		jsonOut  = flag.Bool("json", false, "emit the trace as JSON lines")
		csvOut   = flag.Bool("csv", false, "emit the trace as CSV")
		live     = flag.Bool("live", false, "run only the live-loop scenarios (tag 'live')")
		parallel = flag.Int("parallel", 1, "concurrent scenario runs (0 = all cores, 1 = serial)")
	)
	flag.Parse()

	if *list {
		fmt.Print(listTable().String())
		return
	}
	if *jsonOut && *csvOut {
		log.Fatal("-json and -csv are mutually exclusive")
	}
	if *parallel < 0 {
		log.Fatalf("-parallel %d is negative", *parallel)
	}
	mode := modeSummary
	if *jsonOut {
		mode = modeJSON
	}
	if *csvOut {
		mode = modeCSV
	}
	defs, err := selectDefs(*run)
	if err != nil {
		log.Fatal(err)
	}
	if *live {
		defs = filterTag(defs, "live")
		if len(defs) == 0 {
			log.Fatal("-live selected no scenarios; none of the selection carries the live tag")
		}
	}
	workers := *parallel
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	results, err := runAll(ctx, defs, *seed, workers)
	if err != nil {
		log.Fatal(err)
	}
	// On interrupt the workers stop scheduling new scenarios; the traces
	// of every scenario that did complete are still flushed before exiting
	// non-zero, so a cut-short run never discards finished work.
	done := results[:0]
	for _, res := range results {
		if res != nil {
			done = append(done, res)
		}
	}
	out, err := render(done, mode)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
	if ctx.Err() != nil {
		log.Fatalf("interrupted: %d of %d scenarios completed", len(done), len(defs))
	}
}

// selectDefs resolves -run against the registry. Unknown names are hard
// errors listing what exists, so a typo cannot silently skip a scenario.
func selectDefs(run string) ([]scenario.Def, error) {
	if strings.EqualFold(strings.TrimSpace(run), "all") || strings.TrimSpace(run) == "" {
		return scenario.All(), nil
	}
	var out []scenario.Def
	seen := make(map[string]bool)
	for _, raw := range strings.Split(run, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		d, ok := scenario.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q; available: %s",
				name, strings.Join(scenario.Names(), ", "))
		}
		if !seen[d.Name] {
			seen[d.Name] = true
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run selected no scenarios; available: %s",
			strings.Join(scenario.Names(), ", "))
	}
	return out, nil
}

// filterTag keeps the scenarios carrying the tag, in selection order.
func filterTag(defs []scenario.Def, tag string) []scenario.Def {
	var out []scenario.Def
	for _, d := range defs {
		for _, t := range d.Tags {
			if strings.EqualFold(t, tag) {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

// runAll executes the selected scenarios on up to workers goroutines and
// returns results in selection order. Each scenario's trace depends only
// on (seed, name), so the worker count cannot change any output byte.
// When ctx is cancelled (SIGINT/SIGTERM) no further scenarios start;
// in-flight ones finish and their slots are filled, leaving the rest nil.
func runAll(ctx context.Context, defs []scenario.Def, seed int64, workers int) ([]*scenario.Result, error) {
	if workers > len(defs) {
		workers = len(defs)
	}
	results := make([]*scenario.Result, len(defs))
	errs := make([]error, len(defs))
	if workers <= 1 {
		for i, d := range defs {
			if ctx.Err() != nil {
				break
			}
			results[i], errs[i] = scenario.Run(d, seed)
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, d := range defs {
			wg.Add(1)
			go func(i int, d scenario.Def) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if ctx.Err() != nil {
					return
				}
				results[i], errs[i] = scenario.Run(d, seed)
			}(i, d)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

type renderMode int

const (
	modeSummary renderMode = iota
	modeJSON
	modeCSV
)

// render formats results in their (deterministic) selection order.
func render(results []*scenario.Result, mode renderMode) (string, error) {
	var b strings.Builder
	switch mode {
	case modeJSON:
		for _, res := range results {
			for _, rec := range res.Records {
				line, err := rec.JSON()
				if err != nil {
					return "", err
				}
				b.WriteString(line)
				b.WriteByte('\n')
			}
		}
	case modeCSV:
		w := csv.NewWriter(&b)
		if err := w.Write(scenario.CSVHeader()); err != nil {
			return "", err
		}
		for _, res := range results {
			for _, rec := range res.Records {
				if err := w.Write(rec.CSVRow()); err != nil {
					return "", err
				}
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return "", err
		}
	default:
		tab := metrics.NewTable("scenario runs",
			"scenario", "seed", "records", "events", "final n", "min H", "final H",
			"max Σf", "at", "unsafe", "adv best", "adv breaks",
			"checks", "diverge", "breach", "max TTR")
		for _, res := range results {
			s := res.Summary()
			tab.AddRowf(s.Scenario, fmt.Sprintf("%d", s.Seed), s.Records, s.Events,
				s.FinalReplicas,
				fmt.Sprintf("%.3f", s.MinEntropy), fmt.Sprintf("%.3f", s.FinalEntropy),
				fmt.Sprintf("%.3f", s.MaxComp), formatAt(s.MaxCompAt), s.UnsafeRecords,
				fmt.Sprintf("%.3f", s.AdvBestFrac), fmt.Sprintf("%t", s.AdvBreaks),
				s.Checks, s.Divergences, s.Breaches, formatTTR(s))
		}
		tab.AddNote("H = entropy (bits); Σf = deduplicated compromised power fraction; re-run with -json or -csv for the full trace")
		tab.AddNote("checks/diverge/breach/TTR come from the live loop (scenarios tagged 'live'); - = no live harness or no recovery")
		b.WriteString(tab.String())
	}
	return b.String(), nil
}

// formatAt renders the worst-compromise instant compactly in hours.
func formatAt(d time.Duration) string {
	return fmt.Sprintf("%gh", d.Hours())
}

// formatTTR renders the slowest recovery span, "-" when nothing recovered.
func formatTTR(s scenario.Summary) string {
	if s.Recoveries == 0 {
		return "-"
	}
	return s.MaxTTR.String()
}

// listTable renders the registry index.
func listTable() *metrics.Table {
	tab := metrics.NewTable("registered scenarios", "name", "title", "tags", "horizon")
	for _, d := range scenario.All() {
		tab.AddRowf(d.Name, d.Title, strings.Join(d.Tags, ","), d.Horizon.String())
	}
	tab.AddNote("run a subset with -run name,name; tags: %s", strings.Join(scenario.Tags(), ", "))
	return tab
}
