package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "weights.csv")
	content := "pool-a,40\npool-b,35\npool-a,10\npool-c,15\n"
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	d, err := loadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate labels accumulate.
	if d.Weight("pool-a") != 50 {
		t.Fatalf("pool-a = %v, want 50", d.Weight("pool-a"))
	}
	if d.Support() != 3 {
		t.Fatalf("support = %d", d.Support())
	}
}

func TestLoadCSVErrors(t *testing.T) {
	if _, err := loadCSV("/nonexistent/file.csv"); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.csv")
	os.WriteFile(bad, []byte("a,notanumber\n"), 0o600)
	if _, err := loadCSV(bad); err == nil {
		t.Fatal("bad weight accepted")
	}
	wide := filepath.Join(dir, "wide.csv")
	os.WriteFile(wide, []byte("a,1,extra\n"), 0o600)
	if _, err := loadCSV(wide); err == nil {
		t.Fatal("3-column row accepted")
	}
	neg := filepath.Join(dir, "neg.csv")
	os.WriteFile(neg, []byte("a,-5\n"), 0o600)
	if _, err := loadCSV(neg); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestChooseDistribution(t *testing.T) {
	d, name, err := chooseDistribution("", 0, 0)
	if err != nil || !strings.Contains(name, "snapshot") {
		t.Fatalf("default: %v %q", err, name)
	}
	if d.Support() != 17 {
		t.Fatalf("snapshot support = %d", d.Support())
	}
	d, _, err = chooseDistribution("", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := d.Entropy()
	if math.Abs(h-3) > 1e-12 {
		t.Fatalf("uniform-8 entropy = %v", h)
	}
	d, _, err = chooseDistribution("", 101, 0)
	if err != nil || d.Support() != 118 {
		t.Fatalf("tail: %v support=%d", err, d.Support())
	}
	if _, _, err := chooseDistribution("/nonexistent.csv", 0, 0); err == nil {
		t.Fatal("bad csv path accepted")
	}
}

func TestPrintReport(t *testing.T) {
	d, _, err := chooseDistribution("", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := printReport(&sb, "uniform-4", d); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"entropy (bits)", "2", "κ-optimal (Definition 1)", "top configurations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
