// Command entropy computes the paper's diversity and resilience metrics
// for a voting-power distribution: the built-in Bitcoin snapshot
// (Example 1), the Figure 1 tail scenario, or a user-supplied CSV of
// label,weight pairs.
//
// Usage:
//
//	entropy                     # Example 1 snapshot report
//	entropy -tail 101           # snapshot + 0.87% over 101 miners (Fig. 1 point)
//	entropy -csv weights.csv    # custom distribution
//	entropy -uniform 8          # uniform k-replica reference
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"repro/internal/bft"
	"repro/internal/core"
	"repro/internal/diversity"
	"repro/internal/metrics"
	"repro/internal/nakamoto"
	"repro/internal/pooldata"
)

// tolString renders a family's tolerance as the paper's fraction where it
// is one (1/3, 1/2), decimal otherwise.
func tolString(s core.Substrate) string {
	switch s.Tolerance() {
	case core.BFTThreshold:
		return "1/3"
	case core.NakamotoThreshold:
		return "1/2"
	default:
		return fmt.Sprintf("%.3f", s.Tolerance())
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("entropy: ")
	var (
		csvPath = flag.String("csv", "", "CSV file of label,weight rows")
		tail    = flag.Int("tail", 0, "add the snapshot's 0.87% residual spread over N tail miners")
		uniform = flag.Int("uniform", 0, "report a uniform k-configuration distribution instead")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel between the load and report stages.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	d, name, err := chooseDistribution(*csvPath, *tail, *uniform)
	if err != nil {
		log.Fatal(err)
	}
	if ctx.Err() != nil {
		log.Fatal("interrupted")
	}
	if err := printReport(os.Stdout, name, d); err != nil {
		log.Fatal(err)
	}
}

func chooseDistribution(csvPath string, tail, uniform int) (diversity.Distribution, string, error) {
	switch {
	case csvPath != "":
		d, err := loadCSV(csvPath)
		return d, "csv: " + csvPath, err
	case uniform > 0:
		return diversity.Uniform(uniform), fmt.Sprintf("uniform-%d", uniform), nil
	case tail > 0:
		d, err := pooldata.WithUniformTail(tail)
		return d, fmt.Sprintf("bitcoin snapshot + %d tail miners", tail), err
	default:
		return pooldata.SnapshotDistribution(), "bitcoin snapshot (2 Feb 2023)", nil
	}
}

func loadCSV(path string) (diversity.Distribution, error) {
	f, err := os.Open(path)
	if err != nil {
		return diversity.Distribution{}, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = 2
	weights := make(map[string]float64)
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return diversity.Distribution{}, err
		}
		w, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return diversity.Distribution{}, fmt.Errorf("bad weight %q: %w", rec[1], err)
		}
		weights[rec[0]] += w
	}
	return diversity.FromWeights(weights)
}

func printReport(w io.Writer, name string, d diversity.Distribution) error {
	rep, err := diversity.ReportForDistribution(d)
	if err != nil {
		return err
	}
	tab := metrics.NewTable("diversity report — "+name, "metric", "value")
	tab.AddRowf("configurations (support)", rep.Support)
	tab.AddRowf("entropy (bits)", rep.Entropy)
	tab.AddRowf("normalized entropy", rep.NormalizedEntropy)
	tab.AddRowf("effective configurations (2^H)", rep.EffectiveConfigurations)
	tab.AddRowf("simpson index", rep.SimpsonIndex)
	tab.AddRowf("max configuration share", rep.MaxShare)
	// Break resilience per consensus family, selected by value.
	for _, sub := range []core.Substrate{bft.Substrate(), nakamoto.Substrate()} {
		faults, err := d.MinFaultsToExceed(sub.Tolerance())
		if err != nil {
			return err
		}
		tab.AddRowf(fmt.Sprintf("min faults to break %s (f=%s)", sub.Name(), tolString(sub)), faults)
	}
	if rep.Kappa > 0 {
		tab.AddRowf("κ-optimal (Definition 1)", rep.Kappa)
	} else {
		tab.AddRowf("κ-optimal (Definition 1)", "no")
	}
	if _, err := fmt.Fprint(w, tab.String()); err != nil {
		return err
	}
	labels, shares, err := d.TopShares(5)
	if err != nil {
		return err
	}
	top := metrics.NewTable("top configurations", "label", "share")
	for i := range labels {
		top.AddRowf(labels[i], shares[i])
	}
	_, err = fmt.Fprint(w, "\n"+top.String())
	return err
}
