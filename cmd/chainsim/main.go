// Command chainsim drives the Nakamoto simulator: full-network mining with
// the Example 1 pool snapshot (or a uniform fleet), fork-rate reporting,
// and double-spend attack evaluation for compromised-pool scenarios.
//
// Usage:
//
//	chainsim -blocks 2000                      # snapshot pools, chain stats
//	chainsim -uniform 50 -propagation 10s      # 50 equal miners, slow network
//	chainsim -doublespend -k 2 -z 6            # attack after compromising 2 pools
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/nakamoto"
	"repro/internal/pooldata"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chainsim: ")
	var (
		blocks      = flag.Int("blocks", 1000, "blocks to mine")
		uniform     = flag.Int("uniform", 0, "use N equal miners instead of the Bitcoin snapshot")
		interval    = flag.Duration("interval", 10*time.Minute, "expected block interval")
		propagation = flag.Duration("propagation", 5*time.Second, "block propagation delay")
		seed        = flag.Int64("seed", 1, "simulation seed")
		doubleSpend = flag.Bool("doublespend", false, "evaluate a double-spend instead of mining stats")
		k           = flag.Int("k", 2, "pools compromised (doublespend mode)")
		z           = flag.Int("z", 6, "confirmations (doublespend mode)")
		trials      = flag.Int("trials", 100000, "Monte Carlo trials (doublespend mode)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel between stages; the simulation kernels are
	// uninterruptible, so the check sits at each stage boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	pools := snapshotPools()
	if *uniform > 0 {
		pools = uniformPools(*uniform)
	}

	if *doubleSpend {
		runDoubleSpend(ctx, pools, *k, *z, *trials, *seed)
		return
	}

	res, err := nakamoto.Simulate(nakamoto.Config{
		Pools:         pools,
		BlockInterval: *interval,
		Propagation:   *propagation,
		Seed:          *seed,
	}, *blocks)
	if err != nil {
		log.Fatal(err)
	}
	if ctx.Err() != nil {
		log.Fatal("interrupted")
	}
	tab := metrics.NewTable("mining simulation", "metric", "value")
	tab.AddRowf("blocks mined", res.TotalBlocks)
	tab.AddRowf("main chain length", res.MainChainLength)
	tab.AddRowf("stale blocks", res.StaleBlocks)
	tab.AddRowf("fork rate", res.ForkRate)
	fmt.Print(tab.String())

	shares := metrics.NewTable("best-chain blocks by pool", "pool", "blocks", "share")
	for _, p := range pools {
		n := res.BlocksByPool[p.Name]
		if n == 0 {
			continue
		}
		shares.AddRowf(p.Name, n, float64(n)/float64(res.MainChainLength))
	}
	fmt.Print("\n" + shares.String())
}

func runDoubleSpend(ctx context.Context, pools []nakamoto.Pool, k, z, trials int, seed int64) {
	q, err := nakamoto.CompromisedShare(pools, k)
	if err != nil {
		log.Fatal(err)
	}
	tab := metrics.NewTable("double-spend evaluation", "metric", "value")
	tab.AddRowf("pools compromised", k)
	tab.AddRowf("attacker hash share q", q)
	tab.AddRowf("confirmations z", z)
	// The Nakamoto family's tolerance, selected by value rather than a
	// hard-coded constant: above it the attacker out-mines the network.
	if sub := nakamoto.Substrate(); q >= sub.Tolerance() {
		tab.AddRowf("success probability", 1.0)
		tab.AddNote("q >= %s tolerance %.2f: the attacker out-mines the network; success is certain",
			sub.Name(), sub.Tolerance())
		fmt.Print(tab.String())
		return
	}
	exact, err := nakamoto.DoubleSpendProbabilityExact(q, z)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := nakamoto.DoubleSpendProbability(q, z)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := nakamoto.SimulateDoubleSpend(rand.New(rand.NewSource(seed)), q, z, trials)
	if err != nil {
		log.Fatal(err)
	}
	if ctx.Err() != nil {
		log.Fatal("interrupted")
	}
	tab.AddRowf("P success (exact race)", exact)
	tab.AddRowf("P success (Nakamoto Poisson)", approx)
	tab.AddRowf("P success (simulated)", sim)
	fmt.Print(tab.String())
}

func snapshotPools() []nakamoto.Pool {
	pools := make([]nakamoto.Pool, 0, 17)
	for _, p := range pooldata.BitcoinSnapshot() {
		pools = append(pools, nakamoto.Pool{Name: p.Name, Power: p.Share})
	}
	return pools
}

func uniformPools(n int) []nakamoto.Pool {
	pools := make([]nakamoto.Pool, n)
	for i := range pools {
		pools[i] = nakamoto.Pool{Name: fmt.Sprintf("miner-%03d", i), Power: 1}
	}
	return pools
}
