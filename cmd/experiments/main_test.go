package main

import (
	"context"
	"strings"
	"testing"

	"repro/internal/experiment"
)

func TestSelectExperimentsAll(t *testing.T) {
	got, err := selectExperiments("", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(experiment.IDs()) {
		t.Fatalf("selected %d, want all %d", len(got), len(experiment.IDs()))
	}
}

func TestSelectExperimentsOnly(t *testing.T) {
	got, err := selectExperiments("f1, T1,F1", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "F1" || got[1].ID != "T1" {
		t.Fatalf("selection = %+v, want [F1 T1] (case-folded, deduplicated)", got)
	}
}

func TestSelectExperimentsRejectsUnknownID(t *testing.T) {
	_, err := selectExperiments("F1,NOPE", "")
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "NOPE") {
		t.Fatalf("error does not name the bad id: %v", err)
	}
	// The error must print the available ids so the user can recover.
	for _, id := range []string{"F1", "CHURN", "X6"} {
		if !strings.Contains(msg, id) {
			t.Fatalf("error does not list available id %s: %v", id, err)
		}
	}
}

func TestSelectExperimentsTagFilter(t *testing.T) {
	got, err := selectExperiments("", "mitigation")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("mitigation tag selected nothing")
	}
	for _, e := range got {
		if !e.HasTag("mitigation") {
			t.Fatalf("%s selected without the tag", e.ID)
		}
	}
	if _, err := selectExperiments("", "no-such-tag"); err == nil {
		t.Fatal("unknown tag accepted")
	}
	// -only must stay inside the tag filter.
	if _, err := selectExperiments("F1", "mitigation"); err == nil {
		t.Fatal("-only outside -tag accepted")
	}
}

func TestListTableEnumeratesRegistry(t *testing.T) {
	out := listTable().String()
	for _, id := range experiment.IDs() {
		if !strings.Contains(out, id) {
			t.Fatalf("-list output misses %s", id)
		}
	}
}

// Acceptance: a -parallel run must print byte-identical output to a
// serial run with the same parameters, Monte Carlo experiments included.
func TestParallelOutputByteIdenticalToSerial(t *testing.T) {
	selected, err := selectExperiments("F1,X4,M1,CHURN", "")
	if err != nil {
		t.Fatal(err)
	}
	p := experiment.Params{Seed: 7, Trials: 2000, Scale: 100, Workers: 8}
	serialParams := p
	serialParams.Workers = 1
	serial, err := experiment.RunConcurrent(context.Background(), selected, serialParams, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := experiment.RunConcurrent(context.Background(), selected, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, markdown := range []bool{false, true} {
		if render(serial, markdown) != render(parallel, markdown) {
			t.Fatalf("parallel output differs from serial (markdown=%v)", markdown)
		}
	}
	if render(serial, false) == "" {
		t.Fatal("render produced no output")
	}
}
