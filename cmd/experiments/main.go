// Command experiments regenerates every table and figure series of the
// paper reproduction (see DESIGN.md's per-experiment index) and prints them
// as aligned text tables, or as markdown with -markdown (the format
// EXPERIMENTS.md embeds).
//
// Usage:
//
//	experiments              # all experiments, text tables
//	experiments -markdown    # markdown output
//	experiments -only F1,T1  # a subset by experiment id
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/metrics"
)

type runner struct {
	id  string
	run func() (*metrics.Table, error)
}

func runners() []runner {
	return []runner{
		{"F1", func() (*metrics.Table, error) { t, _, err := experiment.Figure1(1000); return t, err }},
		{"T1", func() (*metrics.Table, error) { t, _, err := experiment.Example1(); return t, err }},
		{"P1", func() (*metrics.Table, error) { t, _, err := experiment.Proposition1Table(); return t, err }},
		{"P2", func() (*metrics.Table, error) { t, _, err := experiment.Proposition2Table(); return t, err }},
		{"P3", func() (*metrics.Table, error) {
			t, _, err := experiment.Proposition3Table(8, []int{1, 2, 4, 8, 16})
			return t, err
		}},
		{"D12", experiment.KappaOmegaTable},
		{"X1", func() (*metrics.Table, error) {
			t, _, err := experiment.SafetyViolationVsEntropy(12, []int{1, 2, 3, 4, 6, 12})
			return t, err
		}},
		{"X2", func() (*metrics.Table, error) {
			t, _, err := experiment.TwoTierWeighting([]float64{1, 0.75, 0.5, 0.25, 0.1})
			return t, err
		}},
		{"X4", func() (*metrics.Table, error) {
			t, _, err := experiment.DoubleSpendVsCompromise([]int{1, 2, 3}, []int{1, 2, 6}, 20000, 7)
			return t, err
		}},
		{"X5", func() (*metrics.Table, error) {
			t, _, err := experiment.CommitteeDiversity([]int{16, 32, 64, 96}, 7)
			return t, err
		}},
		{"SEC2C", experiment.FaultIndependenceOverTime},
		{"ADV", experiment.GreedyAdversaryTable},
		{"ABL", func() (*metrics.Table, error) { t, _, err := experiment.AdmissionAblation(2000, 7); return t, err }},
		{"M1", func() (*metrics.Table, error) {
			t, _, err := experiment.PatchLatencySweep([]time.Duration{0, 24 * time.Hour, 3 * 24 * time.Hour, 7 * 24 * time.Hour})
			return t, err
		}},
		{"M2", func() (*metrics.Table, error) {
			t, _, err := experiment.PoolSplitting([]int{1, 2, 4, 8, 16})
			return t, err
		}},
		{"M3", func() (*metrics.Table, error) {
			t, _, err := experiment.DelegationCollapse(1000, []float64{0, 0.25, 0.5, 0.75, 0.95})
			return t, err
		}},
		{"CHURN", func() (*metrics.Table, error) {
			t, _, err := experiment.ChurnTrajectory(30, 25, true, 11)
			return t, err
		}},
		{"PLAN", func() (*metrics.Table, error) {
			t, _, err := experiment.PlannerComparison(24, 7)
			return t, err
		}},
		{"M4", func() (*metrics.Table, error) {
			t, _, err := experiment.ProactiveRecovery([]time.Duration{24 * time.Hour, 7 * 24 * time.Hour})
			return t, err
		}},
		{"X6", func() (*metrics.Table, error) {
			t, _, err := experiment.CommitteeEndToEnd(12, 3)
			return t, err
		}},
		{"NT", func() (*metrics.Table, error) {
			t, _, err := experiment.HashrateDrift(100, 0.1, 7)
			return t, err
		}},
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		markdown = flag.Bool("markdown", false, "emit markdown tables")
		only     = flag.String("only", "", "comma-separated experiment ids to run (default all)")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	ran := 0
	for _, r := range runners() {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		tab, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.id, err)
		}
		if *markdown {
			fmt.Printf("### %s\n\n%s\n", r.id, tab.Markdown())
		} else {
			fmt.Printf("[%s]\n%s\n", r.id, tab.String())
		}
		ran++
	}
	if ran == 0 {
		log.Println("no experiments matched -only filter")
		os.Exit(1)
	}
}
