// Command experiments regenerates every table and figure series of the
// paper reproduction (see DESIGN.md's per-experiment index) and prints
// them as aligned text tables, or as markdown with -markdown (the format
// EXPERIMENTS.md embeds). It drives off the experiment registry
// (internal/experiment), the same index bench_test.go times, so the CLI
// and the benchmarks cannot drift.
//
// Usage:
//
//	experiments                  # all experiments, text tables
//	experiments -list            # enumerate ids, titles and tags
//	experiments -markdown        # markdown output
//	experiments -only F1,T1      # a subset by experiment id
//	experiments -tag mitigation  # a subset by tag
//	experiments -seed 11 -trials 5000 -scale 500
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"repro/internal/experiment"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		markdown = flag.Bool("markdown", false, "emit markdown tables")
		list     = flag.Bool("list", false, "list registered experiments and exit")
		only     = flag.String("only", "", "comma-separated experiment ids to run (default all)")
		tag      = flag.String("tag", "", "run only experiments carrying this tag")
		seed     = flag.Int64("seed", experiment.DefaultParams().Seed, "pseudo-randomness seed")
		trials   = flag.Int("trials", experiment.DefaultParams().Trials, "Monte Carlo trial count")
		scale    = flag.Int("scale", experiment.DefaultParams().Scale, "population/sweep scale knob")
	)
	flag.Parse()

	if *list {
		fmt.Print(listTable().String())
		return
	}

	selected, err := selectExperiments(*only, *tag)
	if err != nil {
		log.Fatal(err)
	}
	params := experiment.Params{Seed: *seed, Trials: *trials, Scale: *scale}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	for _, e := range selected {
		tab, _, err := e.Run(ctx, params)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		if *markdown {
			fmt.Printf("### %s\n\n%s\n", e.ID, tab.Markdown())
		} else {
			fmt.Printf("[%s]\n%s\n", e.ID, tab.String())
		}
	}
}

// listTable renders the registry index.
func listTable() *metrics.Table {
	tab := metrics.NewTable("registered experiments", "id", "title", "tags")
	for _, e := range experiment.All() {
		tab.AddRowf(e.ID, e.Title, strings.Join(e.Tags, ","))
	}
	tab.AddNote("run a subset with -only id,id or -tag <tag>; tags: %s", strings.Join(experiment.Tags(), ", "))
	return tab
}

// selectExperiments resolves the -only and -tag filters against the
// registry. Unknown ids and tags are hard errors listing what exists, so
// a typo cannot silently skip an experiment.
func selectExperiments(only, tag string) ([]experiment.Experiment, error) {
	pool := experiment.All()
	if tag != "" {
		pool = experiment.WithTag(tag)
		if len(pool) == 0 {
			return nil, fmt.Errorf("no experiments tagged %q; available tags: %s",
				tag, strings.Join(experiment.Tags(), ", "))
		}
	}
	if only == "" {
		return pool, nil
	}
	inPool := make(map[string]bool, len(pool))
	for _, e := range pool {
		inPool[e.ID] = true
	}
	var out []experiment.Experiment
	seen := make(map[string]bool)
	for _, raw := range strings.Split(only, ",") {
		id := strings.TrimSpace(raw)
		if id == "" {
			continue
		}
		e, ok := experiment.Lookup(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment id %q; available: %s",
				id, strings.Join(experiment.IDs(), ", "))
		}
		if tag != "" && !inPool[e.ID] {
			return nil, fmt.Errorf("experiment %s does not carry tag %q", e.ID, tag)
		}
		if !seen[e.ID] {
			seen[e.ID] = true
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only selected no experiments; available: %s",
			strings.Join(experiment.IDs(), ", "))
	}
	return out, nil
}
