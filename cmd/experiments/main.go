// Command experiments regenerates every table and figure series of the
// paper reproduction (see DESIGN.md's per-experiment index) and prints
// them as aligned text tables, or as markdown with -markdown (the format
// EXPERIMENTS.md embeds). It drives off the experiment registry
// (internal/experiment), the same index bench_test.go times, so the CLI
// and the benchmarks cannot drift.
//
// Usage:
//
//	experiments                  # all experiments, text tables
//	experiments -list            # enumerate ids, titles and tags
//	experiments -markdown        # markdown output
//	experiments -only F1,T1      # a subset by experiment id
//	experiments -tag mitigation  # a subset by tag
//	experiments -seed 11 -trials 5000 -scale 500
//	experiments -parallel 0      # regenerate across all cores
//
// -parallel N is one worker budget, divided between the two levels of
// parallelism: experiments run concurrently on min(N, selected) workers
// and each experiment spreads its Monte Carlo trials over the remaining
// share (so -only X4 -parallel 8 gives one experiment 8 trial workers,
// while -parallel 8 over all experiments runs 8 of them at a time).
// Parallel output is buffered per experiment and printed in selection
// order; trial seeds never depend on scheduling — the bytes are identical
// to a serial run with the same parameters. A serial run (-parallel 1,
// the default) streams each table as it completes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"repro/internal/experiment"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		markdown = flag.Bool("markdown", false, "emit markdown tables")
		list     = flag.Bool("list", false, "list registered experiments and exit")
		only     = flag.String("only", "", "comma-separated experiment ids to run (default all)")
		tag      = flag.String("tag", "", "run only experiments carrying this tag")
		seed     = flag.Int64("seed", experiment.DefaultParams().Seed, "pseudo-randomness seed")
		trials   = flag.Int("trials", experiment.DefaultParams().Trials, "Monte Carlo trial count")
		scale    = flag.Int("scale", experiment.DefaultParams().Scale, "population/sweep scale knob")
		parallel = flag.Int("parallel", 1, "worker goroutines for experiments and Monte Carlo trials (0 = all cores, 1 = serial)")
	)
	flag.Parse()

	if *list {
		fmt.Print(listTable().String())
		return
	}
	if *parallel < 0 {
		log.Fatalf("-parallel %d is negative", *parallel)
	}
	workers := *parallel
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	selected, err := selectExperiments(*only, *tag)
	if err != nil {
		log.Fatal(err)
	}
	// One budget, two levels: concurrent experiments first, leftover
	// workers to each experiment's Monte Carlo trials.
	expWorkers := workers
	if expWorkers > len(selected) {
		expWorkers = len(selected)
	}
	params := experiment.Params{Seed: *seed, Trials: *trials, Scale: *scale, Workers: workers / expWorkers}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if expWorkers <= 1 {
		// Serial: stream each table as it completes so an error or an
		// interrupt late in the run does not discard finished output.
		for _, e := range selected {
			tab, _, err := e.Run(ctx, params)
			if err != nil {
				log.Fatalf("%s: %v", e.ID, err)
			}
			fmt.Print(render([]experiment.Result{{Experiment: e, Table: tab}}, *markdown))
		}
		return
	}
	results, err := experiment.RunConcurrent(ctx, selected, params, expWorkers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(render(results, *markdown))
}

// render formats the results in their (deterministic) selection order, so
// a -parallel run prints the same bytes as a serial one.
func render(results []experiment.Result, markdown bool) string {
	var b strings.Builder
	for _, res := range results {
		if markdown {
			fmt.Fprintf(&b, "### %s\n\n%s\n", res.Experiment.ID, res.Table.Markdown())
		} else {
			fmt.Fprintf(&b, "[%s]\n%s\n", res.Experiment.ID, res.Table.String())
		}
	}
	return b.String()
}

// listTable renders the registry index.
func listTable() *metrics.Table {
	tab := metrics.NewTable("registered experiments", "id", "title", "tags")
	for _, e := range experiment.All() {
		tab.AddRowf(e.ID, e.Title, strings.Join(e.Tags, ","))
	}
	tab.AddNote("run a subset with -only id,id or -tag <tag>; tags: %s", strings.Join(experiment.Tags(), ", "))
	return tab
}

// selectExperiments resolves the -only and -tag filters against the
// registry. Unknown ids and tags are hard errors listing what exists, so
// a typo cannot silently skip an experiment.
func selectExperiments(only, tag string) ([]experiment.Experiment, error) {
	pool := experiment.All()
	if tag != "" {
		pool = experiment.WithTag(tag)
		if len(pool) == 0 {
			return nil, fmt.Errorf("no experiments tagged %q; available tags: %s",
				tag, strings.Join(experiment.Tags(), ", "))
		}
	}
	if only == "" {
		return pool, nil
	}
	inPool := make(map[string]bool, len(pool))
	for _, e := range pool {
		inPool[e.ID] = true
	}
	var out []experiment.Experiment
	seen := make(map[string]bool)
	for _, raw := range strings.Split(only, ",") {
		id := strings.TrimSpace(raw)
		if id == "" {
			continue
		}
		e, ok := experiment.Lookup(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment id %q; available: %s",
				id, strings.Join(experiment.IDs(), ", "))
		}
		if tag != "" && !inPool[e.ID] {
			return nil, fmt.Errorf("experiment %s does not carry tag %q", e.ID, tag)
		}
		if !seen[e.ID] {
			seen[e.ID] = true
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only selected no experiments; available: %s",
			strings.Join(experiment.IDs(), ", "))
	}
	return out, nil
}
