// Command monitorload drives a monitord instance with sustained
// multi-tenant traffic and reports throughput and latency percentiles
// per endpoint class. It is the service's load harness: the CI smoke job
// runs it against a race-enabled daemon and fails on any non-2xx.
//
// The workload has three phases. Setup creates -tenants wall-clock
// tenants, each seeded with -replicas replicas and one open
// vulnerability. Sustain runs -workers goroutines mixing reads (GET
// assessment / report / worst) with mutations (power changes,
// migrations, transient join/leave, fresh disclosures) across random
// tenants, while -watchers goroutines hold SSE watch streams open and
// count events. After -duration the driver prints a metrics.Table and,
// with -json, writes the same numbers to -out (BENCH_monitord.json).
//
// Usage:
//
//	monitorload                       # self-hosted in-process server
//	monitorload -url http://:8642     # drive an external daemon
//	monitorload -tenants 2000 -duration 10s -workers 64 -json
//
// With no -url the driver hosts the service in-process on a loopback
// listener, so `go run ./cmd/monitorload` is a self-contained benchmark.
// SIGINT/SIGTERM end the sustain phase early but still print the report.
//
// Transient failures — dial/transport errors and 5xx responses — are
// retried with jittered exponential backoff up to -retries attempts, so
// a single blip under load does not fail the run; the report carries
// per-class retry and give-up counts. The exit status is non-zero only
// if a request exhausted its attempts or returned a non-transient
// non-2xx.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/monitord"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("monitorload: ")
	var (
		baseURL  = flag.String("url", "", "monitord base URL (empty = host the service in-process)")
		tenants  = flag.Int("tenants", 1000, "tenants to create")
		replicas = flag.Int("replicas", 4, "replicas seeded per tenant")
		duration = flag.Duration("duration", 5*time.Second, "sustain-phase length")
		workers  = flag.Int("workers", 32, "concurrent read/mutate workers")
		watchers = flag.Int("watchers", 64, "concurrent SSE watch streams")
		interval = flag.Duration("watch-interval", 250*time.Millisecond, "tenant watch interval")
		seed     = flag.Int64("seed", 1, "workload shape seed")
		retries  = flag.Int("retries", 3, "max attempts per request for transient dial/5xx failures")
		jsonOut  = flag.Bool("json", false, "write the report to -out as JSON")
		outPath  = flag.String("out", "BENCH_monitord.json", "JSON report path (with -json)")
	)
	flag.Parse()
	if *tenants < 1 || *replicas < 1 || *workers < 1 || *watchers < 0 || *retries < 1 {
		log.Fatal("need -tenants >= 1, -replicas >= 1, -workers >= 1, -watchers >= 0, -retries >= 1")
	}
	if err := run(*baseURL, *tenants, *replicas, *duration, *workers, *watchers, *interval, *seed, *retries, *jsonOut, *outPath); err != nil {
		log.Fatal(err)
	}
}

func run(baseURL string, tenants, replicas int, duration time.Duration, workers, watchers int, interval time.Duration, seed int64, retries int, jsonOut bool, outPath string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Self-host when no target was given: the benchmark then measures the
	// service itself rather than requiring a separately booted daemon.
	if baseURL == "" {
		svc := monitord.NewServer()
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: svc}
		go func() { _ = httpSrv.Serve(ln) }()
		defer httpSrv.Close()
		baseURL = "http://" + ln.Addr().String()
		log.Printf("self-hosting monitord on %s", baseURL)
	}
	baseURL = strings.TrimRight(baseURL, "/")

	d := newDriver(baseURL, workers+watchers+8, retries)
	if err := d.ping(ctx); err != nil {
		return fmt.Errorf("target %s not reachable: %w", baseURL, err)
	}

	log.Printf("setup: creating %d tenants (%d replicas each)", tenants, replicas)
	setupStart := time.Now()
	if err := d.setup(ctx, tenants, replicas, interval, workers); err != nil {
		return err
	}
	log.Printf("setup done in %v", time.Since(setupStart).Round(time.Millisecond))

	log.Printf("sustain: %v with %d workers and %d watchers", duration, workers, watchers)
	sustainCtx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d.worker(sustainCtx, rand.New(rand.NewSource(seed+int64(w))), w, tenants, replicas)
		}(w)
	}
	for w := 0; w < watchers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d.watcher(sustainCtx, rand.New(rand.NewSource(seed+1000003*int64(w+1))), tenants)
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := d.report(tenants, replicas, workers, watchers, duration, wall)
	fmt.Print(rep.table().String())
	if jsonOut {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		log.Printf("wrote %s", outPath)
	}
	if n := rep.totalErrors(); n != 0 {
		return fmt.Errorf("%d requests failed or returned non-2xx", n)
	}
	return nil
}

// classRec accumulates latencies (milliseconds), failures, and retry
// traffic for one endpoint class.
type classRec struct {
	mu      sync.Mutex
	lat     []float64
	errs    uint64
	retries uint64
	giveUps uint64
}

func (c *classRec) observe(d time.Duration) {
	c.mu.Lock()
	c.lat = append(c.lat, float64(d)/float64(time.Millisecond))
	c.mu.Unlock()
}

func (c *classRec) fail() {
	c.mu.Lock()
	c.errs++
	c.mu.Unlock()
}

func (c *classRec) retry() {
	c.mu.Lock()
	c.retries++
	c.mu.Unlock()
}

// giveUp records a request whose transient failures outlasted every
// attempt. It counts as an error too: persistent unavailability must
// still fail the run.
func (c *classRec) giveUp() {
	c.mu.Lock()
	c.giveUps++
	c.errs++
	c.mu.Unlock()
}

func (c *classRec) snapshot() ([]float64, uint64, uint64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]float64(nil), c.lat...), c.errs, c.retries, c.giveUps
}

// classes, in report order. "watch" records time-to-first-event per
// stream; watch event counts are reported separately.
var classNames = []string{"create", "read", "mutate", "watch"}

type driver struct {
	base        string
	client      *http.Client
	rec         map[string]*classRec
	maxAttempts int
	watchEvents atomic.Uint64
}

func newDriver(base string, conns, maxAttempts int) *driver {
	rec := make(map[string]*classRec, len(classNames))
	for _, c := range classNames {
		rec[c] = &classRec{}
	}
	return &driver{
		base: base,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        conns,
			MaxIdleConnsPerHost: conns,
		}},
		rec:         rec,
		maxAttempts: maxAttempts,
	}
}

func (d *driver) ping(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, "GET", d.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

// Backoff shape for transient failures: attempt k waits roughly
// retryBase·2^k, jittered to [½, 1½) of that, capped at retryCap — the
// jitter keeps a fleet of workers from re-hammering a recovering server
// in lockstep.
const (
	retryBase = 25 * time.Millisecond
	retryCap  = 500 * time.Millisecond
)

// call issues one request, retrying transient failures (transport errors,
// 5xx) with jittered exponential backoff up to d.maxAttempts, recording
// latency, retries and give-ups under class. The response body is drained
// so connections are reused.
func (d *driver) call(ctx context.Context, class, method, path string, body any) bool {
	rec := d.rec[class]
	var blob []byte
	if body != nil {
		var err error
		if blob, err = json.Marshal(body); err != nil {
			rec.fail()
			return false
		}
	}
	for attempt := 0; ; attempt++ {
		start := time.Now()
		ok, transient := d.attempt(ctx, method, path, blob)
		if ok {
			rec.observe(time.Since(start))
			return true
		}
		// A request cut off by the sustain deadline or a signal is not a
		// service failure; everything else is.
		if ctx.Err() != nil {
			return false
		}
		if !transient {
			rec.fail()
			return false
		}
		if attempt+1 >= d.maxAttempts {
			rec.giveUp()
			return false
		}
		rec.retry()
		if !sleepBackoff(ctx, attempt) {
			return false
		}
	}
}

// attempt issues the request once; transient reports whether a failure is
// worth retrying — a transport error (refused, reset, timeout) or a 5xx.
// 4xx responses are the caller's fault and never retried.
func (d *driver) attempt(ctx context.Context, method, path string, blob []byte) (ok, transient bool) {
	req, err := http.NewRequestWithContext(ctx, method, d.base+path, bytes.NewReader(blob))
	if err != nil {
		return false, false
	}
	if blob != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return false, true
	}
	_, _ = bufio.NewReader(resp.Body).WriteTo(discard{})
	resp.Body.Close()
	if resp.StatusCode >= 500 {
		return false, true
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return false, false
	}
	return true, false
}

// sleepBackoff waits out the jittered backoff for the given attempt,
// returning false if ctx ended first.
func sleepBackoff(ctx context.Context, attempt int) bool {
	wait := retryBase << attempt
	if wait > retryCap {
		wait = retryCap
	}
	wait = wait/2 + time.Duration(rand.Int63n(int64(wait)))
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func tenantName(i int) string { return fmt.Sprintf("t%04d", i) }

// loadSpec builds the seed spec for one tenant: alternating OS stacks so
// the diversity report is non-trivial, plus one vulnerability whose
// window is open for the whole run.
func loadSpec(replicas int, interval time.Duration) monitord.TenantSpec {
	oses := []string{"ubuntu", "freebsd", "openbsd"}
	spec := monitord.TenantSpec{WatchInterval: monitord.Duration(interval)}
	for r := 0; r < replicas; r++ {
		spec.Replicas = append(spec.Replicas, monitord.ReplicaSpec{
			ID: fmt.Sprintf("r%d", r),
			Components: []monitord.ComponentSpec{
				{Class: "operating-system", Name: oses[r%len(oses)], Version: "1"},
			},
			Power:        float64(10 + r),
			PatchLatency: monitord.Duration(24 * time.Hour),
		})
	}
	spec.Vulns = []monitord.VulnSpec{{
		ID: "CVE-LOAD-0001", Class: "operating-system", Product: oses[0], Version: "1",
		Disclosed: 0, PatchAt: monitord.Duration(1000 * time.Hour), Severity: 1,
	}}
	return spec
}

// setup creates all tenants with `workers` concurrent creators.
func (d *driver) setup(ctx context.Context, tenants, replicas int, interval time.Duration, workers int) error {
	spec := loadSpec(replicas, interval)
	var wg sync.WaitGroup
	next := atomic.Int64{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= tenants || ctx.Err() != nil {
					return
				}
				d.call(ctx, "create", "PUT", "/tenants/"+tenantName(i), spec)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("setup interrupted: %w", err)
	}
	if _, errs, _, _ := d.rec["create"].snapshot(); errs != 0 {
		return fmt.Errorf("setup: %d tenant creations failed", errs)
	}
	return nil
}

// worker mixes reads and mutations across random tenants until ctx ends.
func (d *driver) worker(ctx context.Context, rng *rand.Rand, id, tenants, replicas int) {
	transient := 0
	for ctx.Err() == nil {
		tn := "/tenants/" + tenantName(rng.Intn(tenants))
		switch p := rng.Intn(100); {
		case p < 45:
			d.call(ctx, "read", "GET", tn+"/assessment", nil)
		case p < 60:
			d.call(ctx, "read", "GET", tn+"/report", nil)
		case p < 70:
			d.call(ctx, "read", "GET", tn+"/worst?horizon=24h", nil)
		case p < 82:
			pw := 1 + rng.Float64()*50
			d.call(ctx, "mutate", "PATCH", fmt.Sprintf("%s/replicas/r%d", tn, rng.Intn(replicas)),
				monitord.ReplicaPatch{Power: &pw})
		case p < 92:
			os := []string{"ubuntu", "freebsd", "openbsd", "netbsd"}[rng.Intn(4)]
			d.call(ctx, "mutate", "PATCH", fmt.Sprintf("%s/replicas/r%d", tn, rng.Intn(replicas)),
				monitord.ReplicaPatch{Components: []monitord.ComponentSpec{
					{Class: "operating-system", Name: os, Version: "1"},
				}})
		case p < 97:
			// Transient join+leave with a worker-unique id, so concurrent
			// workers never collide on membership.
			rid := fmt.Sprintf("w%d-%d", id, transient)
			transient++
			if d.call(ctx, "mutate", "POST", tn+"/replicas", monitord.ReplicaSpec{
				ID: rid,
				Components: []monitord.ComponentSpec{
					{Class: "operating-system", Name: "netbsd", Version: "1"},
				},
				Power: 1,
			}) {
				d.call(ctx, "mutate", "DELETE", tn+"/replicas/"+rid, nil)
			}
		default:
			// Fresh disclosure with a unique id; rejected duplicates would
			// count as failures, so uniqueness matters.
			vid := fmt.Sprintf("CVE-LOAD-w%d-%d", id, transient)
			transient++
			d.call(ctx, "mutate", "POST", tn+"/vulns", monitord.VulnSpec{
				ID: vid, Class: "operating-system", Product: "freebsd", Version: "1",
				Disclosed: 0, PatchAt: monitord.Duration(1000 * time.Hour), Severity: 0.5,
			})
		}
	}
}

// watcher holds SSE streams open: subscribe to a random tenant, record
// time-to-first-event under "watch", count further events until the
// stream has delivered a few, then move to another tenant.
func (d *driver) watcher(ctx context.Context, rng *rand.Rand, tenants int) {
	for ctx.Err() == nil {
		d.watchOnce(ctx, rng.Intn(tenants))
	}
}

func (d *driver) watchOnce(ctx context.Context, tenant int) {
	streamCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(streamCtx, "GET", d.base+"/tenants/"+tenantName(tenant)+"/watch", nil)
	if err != nil {
		d.rec["watch"].fail()
		return
	}
	start := time.Now()
	resp, err := d.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			d.rec["watch"].fail()
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		d.rec["watch"].fail()
		return
	}
	sc := bufio.NewScanner(resp.Body)
	events := 0
	for sc.Scan() {
		if !strings.HasPrefix(sc.Text(), "event:") {
			continue
		}
		events++
		d.watchEvents.Add(1)
		if events == 1 {
			d.rec["watch"].observe(time.Since(start))
		}
		if events >= 4 {
			return // rotate to another tenant
		}
	}
	// A stream cut mid-read by shutdown or rotation is fine; one that
	// never produced an event is a failure unless the run ended first.
	if events == 0 && ctx.Err() == nil {
		d.rec["watch"].fail()
	}
}

// benchReport is both the table source and the BENCH_monitord.json shape.
type benchReport struct {
	Tenants     int                   `json:"tenants"`
	Replicas    int                   `json:"replicasPerTenant"`
	Workers     int                   `json:"workers"`
	Watchers    int                   `json:"watchers"`
	DurationSec float64               `json:"durationSec"`
	WallSec     float64               `json:"wallSec"`
	WatchEvents uint64                `json:"watchEvents"`
	Classes     map[string]benchClass `json:"classes"`
}

type benchClass struct {
	Requests int     `json:"requests"`
	Errors   uint64  `json:"errors"`
	Retries  uint64  `json:"retries"`
	GaveUp   uint64  `json:"gaveUp"`
	PerSec   float64 `json:"throughputPerSec"`
	MeanMS   float64 `json:"meanMs"`
	P50MS    float64 `json:"p50Ms"`
	P90MS    float64 `json:"p90Ms"`
	P99MS    float64 `json:"p99Ms"`
	MaxMS    float64 `json:"maxMs"`
}

func (d *driver) report(tenants, replicas, workers, watchers int, duration, wall time.Duration) benchReport {
	rep := benchReport{
		Tenants:     tenants,
		Replicas:    replicas,
		Workers:     workers,
		Watchers:    watchers,
		DurationSec: duration.Seconds(),
		WallSec:     wall.Seconds(),
		WatchEvents: d.watchEvents.Load(),
		Classes:     make(map[string]benchClass, len(classNames)),
	}
	for _, name := range classNames {
		lat, errs, retries, giveUps := d.rec[name].snapshot()
		s := metrics.Summarize(lat)
		perSec := 0.0
		if wall > 0 && name != "create" {
			perSec = float64(s.N) / wall.Seconds()
		}
		rep.Classes[name] = benchClass{
			Requests: s.N, Errors: errs, Retries: retries, GaveUp: giveUps, PerSec: perSec,
			MeanMS: s.Mean, P50MS: s.Median, P90MS: s.P90, P99MS: s.P99, MaxMS: s.Max,
		}
	}
	return rep
}

func (r benchReport) totalErrors() uint64 {
	var n uint64
	for _, c := range r.Classes {
		n += c.Errors
	}
	return n
}

func (r benchReport) table() *metrics.Table {
	tab := metrics.NewTable(
		fmt.Sprintf("monitord load: %d tenants, %d workers, %d watchers, %.1fs",
			r.Tenants, r.Workers, r.Watchers, r.WallSec),
		"class", "requests", "req/s", "mean ms", "p50 ms", "p90 ms", "p99 ms", "max ms", "retries", "gave up", "errors")
	for _, name := range classNames {
		c := r.Classes[name]
		tab.AddRowf(name, c.Requests, c.PerSec, c.MeanMS, c.P50MS, c.P90MS, c.P99MS, c.MaxMS, c.Retries, c.GaveUp, c.Errors)
	}
	tab.AddNote("%d watch events total; create is the setup phase (no steady-state rate); watch latency is time to first event", r.WatchEvents)
	tab.AddNote("transient dial/5xx failures retry with jittered backoff; 'gave up' = attempts exhausted (counts as an error), 'errors' also includes non-transient non-2xx")
	return tab
}
