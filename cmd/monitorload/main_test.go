package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestCallRetriesTransient5xx: a server that blips twice before serving
// succeeds within the attempt budget, and the blips land in the retry
// counter rather than the error count.
func TestCallRetriesTransient5xx(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	d := newDriver(srv.URL, 4, 3)
	if !d.call(context.Background(), "read", "GET", "/blip", nil) {
		t.Fatal("call failed despite the third attempt succeeding")
	}
	lat, errs, retries, giveUps := d.rec["read"].snapshot()
	if len(lat) != 1 || errs != 0 || retries != 2 || giveUps != 0 {
		t.Fatalf("lat=%d errs=%d retries=%d giveUps=%d, want 1/0/2/0", len(lat), errs, retries, giveUps)
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", hits.Load())
	}
}

// TestCallGivesUpAfterBoundedAttempts: persistent 5xx exhausts the budget,
// records one give-up (which is also an error), and stops hammering.
func TestCallGivesUpAfterBoundedAttempts(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	d := newDriver(srv.URL, 4, 3)
	if d.call(context.Background(), "read", "GET", "/down", nil) {
		t.Fatal("call succeeded against a dead endpoint")
	}
	_, errs, retries, giveUps := d.rec["read"].snapshot()
	if errs != 1 || retries != 2 || giveUps != 1 {
		t.Fatalf("errs=%d retries=%d giveUps=%d, want 1/2/1", errs, retries, giveUps)
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d requests, want exactly the attempt budget", hits.Load())
	}
}

// TestCallDoesNotRetry4xx: client errors are deterministic — retrying
// them wastes the budget and hides workload bugs.
func TestCallDoesNotRetry4xx(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusNotFound)
	}))
	defer srv.Close()

	d := newDriver(srv.URL, 4, 3)
	if d.call(context.Background(), "read", "GET", "/nope", nil) {
		t.Fatal("404 treated as success")
	}
	_, errs, retries, giveUps := d.rec["read"].snapshot()
	if errs != 1 || retries != 0 || giveUps != 0 {
		t.Fatalf("errs=%d retries=%d giveUps=%d, want 1/0/0", errs, retries, giveUps)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", hits.Load())
	}
}

// TestCallRetriesDialFailure: a refused connection is transient too — the
// driver backs off and gives up within budget instead of erroring once
// per attempt.
func TestCallRetriesDialFailure(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // the port is now refused

	d := newDriver(srv.URL, 4, 2)
	if d.call(context.Background(), "mutate", "POST", "/x", map[string]int{"a": 1}) {
		t.Fatal("call succeeded against a closed listener")
	}
	_, errs, retries, giveUps := d.rec["mutate"].snapshot()
	if errs != 1 || retries != 1 || giveUps != 1 {
		t.Fatalf("errs=%d retries=%d giveUps=%d, want 1/1/1", errs, retries, giveUps)
	}
}
