// Command assessbench runs the assessment scale ladder and writes the
// committed BENCH_assess.json: ns/op for the flat (pre-bucketing) cold
// path, the bucketed cold rebuild, the O(Δ) incremental path and the
// cached path, at 1k/10k/100k (and with -full 1M) replicas × 50/500
// vulnerabilities.
//
// Usage:
//
//	assessbench                      # CI-sized ladder (≤100k replicas)
//	assessbench -full                # adds the 1M-replica rungs
//	assessbench -out BENCH_assess.json -budget 200ms
//
// The table printed to stdout and the JSON written to -out carry the same
// numbers; CI uploads the JSON as an artifact, and the README performance
// table is regenerated from a -full run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/assessbench"
)

type report struct {
	Schema string                    `json:"schema"`
	GoOS   string                    `json:"goos"`
	GoArch string                    `json:"goarch"`
	Rungs  []assessbench.Measurement `json:"rungs"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("assessbench: ")
	var (
		full   = flag.Bool("full", false, "include the 1M-replica rungs")
		out    = flag.String("out", "BENCH_assess.json", "JSON report path (empty = skip)")
		budget = flag.Duration("budget", 150*time.Millisecond, "timed-loop budget per path per rung")
	)
	flag.Parse()

	rungs := assessbench.DefaultRungs()
	if *full {
		rungs = assessbench.FullRungs()
	}
	rep := report{Schema: "assess-ladder/v1", GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	fmt.Printf("%10s %6s %14s %14s %14s %14s %10s\n",
		"replicas", "vulns", "flat", "cold", "incremental", "cached", "inc-speedup")
	for _, r := range rungs {
		m, err := assessbench.MeasureRung(r, *budget)
		if err != nil {
			log.Fatalf("rung %+v: %v", r, err)
		}
		rep.Rungs = append(rep.Rungs, m)
		fmt.Printf("%10d %6d %14s %14s %14s %14s %9.0fx\n",
			m.Replicas, m.Vulns,
			ns(m.FlatNs), ns(m.ColdNs), ns(m.IncrementalNs), ns(m.CachedNs),
			m.SpeedupIncremental)
	}
	if *out == "" {
		return
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d rungs)", *out, len(rep.Rungs))
}

func ns(v float64) string {
	return time.Duration(v).Round(100 * time.Nanosecond).String()
}
