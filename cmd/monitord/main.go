// Command monitord serves the multi-tenant assessment service over
// HTTP/JSON: named registries (tenants) with membership mutation,
// disclosure ingestion, point/worst-window assessment, and live watch
// streams over Server-Sent Events. See the "Service" section of the
// README for the endpoint reference and curl examples.
//
// Usage:
//
//	monitord                    # listen on :8642
//	monitord -addr 127.0.0.1:0  # any free port (logged at startup)
//	monitord -drain 5s          # shutdown drain budget
//
// SIGINT or SIGTERM starts a graceful shutdown: the listener closes, new
// requests are refused with 503, every SSE stream ends cleanly, and
// in-flight requests get -drain to finish before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/monitord"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("monitord: ")
	var (
		addr  = flag.String("addr", ":8642", "listen address")
		drain = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	)
	flag.Parse()
	if err := run(*addr, *drain); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, drain time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	svc := monitord.NewServer()
	httpSrv := &http.Server{
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Listen before announcing readiness so -addr :0 can log the bound
	// port and a supervisor can scrape it.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("listening on %s", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	log.Printf("shutting down (drain %v)", drain)

	// Order matters: closing the service first ends every SSE stream (the
	// handlers select on its done channel), so Shutdown's drain below can
	// actually finish instead of waiting on infinite streams.
	svc.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("clean shutdown")
	return nil
}
