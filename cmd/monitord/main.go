// Command monitord serves the multi-tenant assessment service over
// HTTP/JSON: named registries (tenants) with membership mutation,
// disclosure ingestion, point/worst-window assessment, and live watch
// streams over Server-Sent Events. See the "Service" section of the
// README for the endpoint reference and curl examples.
//
// Usage:
//
//	monitord                    # listen on :8642
//	monitord -addr 127.0.0.1:0  # any free port (logged at startup)
//	monitord -drain 5s          # shutdown drain budget
//	monitord -timeout 30s       # per-request budget for non-watch routes
//
// SIGINT or SIGTERM starts a graceful shutdown: the listener closes, new
// requests are refused with 503, every SSE stream ends cleanly, and
// in-flight requests get -drain to finish before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/monitord"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("monitord: ")
	var (
		addr    = flag.String("addr", ":8642", "listen address")
		drain   = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request handler budget for non-watch routes (0 disables)")
	)
	flag.Parse()
	if err := run(*addr, *drain, *timeout); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, drain, timeout time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	svc := monitord.NewServer()
	httpSrv := &http.Server{
		Handler:           timeoutMux(svc, timeout),
		ReadHeaderTimeout: 10 * time.Second,
		// Reap idle keep-alive connections so stuck clients cannot pin
		// sockets forever; SSE streams write continuously and stay alive.
		IdleTimeout: 2 * time.Minute,
	}

	// Listen before announcing readiness so -addr :0 can log the bound
	// port and a supervisor can scrape it.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("listening on %s", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	log.Printf("shutting down (drain %v)", drain)

	// Order matters: closing the service first ends every SSE stream (the
	// handlers select on its done channel), so Shutdown's drain below can
	// actually finish instead of waiting on infinite streams.
	svc.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("clean shutdown")
	return nil
}

// timeoutMux bounds every handler with http.TimeoutHandler except the SSE
// watch streams, which are long-lived by design — and TimeoutHandler's
// buffered ResponseWriter implements no Flusher, so wrapping them would
// break the protocol outright, not just cut it short.
func timeoutMux(svc http.Handler, timeout time.Duration) http.Handler {
	if timeout <= 0 {
		return svc
	}
	bounded := http.TimeoutHandler(svc, timeout, "request exceeded the handler budget\n")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && isWatchPath(r.URL.Path) {
			svc.ServeHTTP(w, r)
			return
		}
		bounded.ServeHTTP(w, r)
	})
}

// isWatchPath matches exactly GET /tenants/{tenant}/watch.
func isWatchPath(path string) bool {
	rest, ok := strings.CutPrefix(path, "/tenants/")
	if !ok {
		return false
	}
	tenant, leaf, ok := strings.Cut(rest, "/")
	return ok && tenant != "" && leaf == "watch"
}
