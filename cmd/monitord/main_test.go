package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestIsWatchPath(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"/tenants/acme/watch", true},
		{"/tenants/a/watch", true},
		{"/tenants/watch", false},      // GET tenant named "watch"
		{"/tenants//watch", false},     // empty tenant segment
		{"/tenants/acme/worst", false}, // sibling route
		{"/tenants/acme", false},       // tenant resource itself
		{"/stats", false},
		{"/tenants/acme/watch/extra", false},
	}
	for _, c := range cases {
		if got := isWatchPath(c.path); got != c.want {
			t.Errorf("isWatchPath(%q) = %t, want %t", c.path, got, c.want)
		}
	}
}

// TestTimeoutMuxExemptsWatch: a handler slower than the budget gets 503
// on ordinary routes but runs to completion — with a flushable writer —
// on the SSE watch route.
func TestTimeoutMuxExemptsWatch(t *testing.T) {
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := w.(http.Flusher); ok {
			w.Header().Set("X-Flushable", "yes")
		}
		time.Sleep(30 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	})
	h := timeoutMux(slow, 5*time.Millisecond)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/tenants/acme/assessment", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("slow JSON route: %d, want 503", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/tenants/acme/watch", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("watch route: %d, want 200", rec.Code)
	}
	if rec.Header().Get("X-Flushable") != "yes" {
		t.Fatal("watch route lost the Flusher — SSE would break")
	}

	// A POST to the watch path is not a stream and stays bounded.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/tenants/acme/watch", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("POST watch path: %d, want 503", rec.Code)
	}

	// timeout 0 disables the wrapper entirely.
	if got := timeoutMux(slow, 0); got == nil {
		t.Fatal("nil handler")
	}
	rec = httptest.NewRecorder()
	timeoutMux(slow, 0).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("unbounded route: %d, want 200", rec.Code)
	}
}
