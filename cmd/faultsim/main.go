// Command faultsim runs fault-independence scenarios against a synthetic
// permissionless registry: it builds a fleet with a chosen configuration
// spread, injects a vulnerability catalog, plans a greedy exploit attack,
// and reports the Sec. II-C safety condition over the vulnerability window.
//
// The consensus family is selected by value (-substrate bft|nakamoto|
// committee) via the core.Substrate interface; -threshold overrides the
// family's tolerance with a bespoke fraction.
//
// Usage:
//
//	faultsim -replicas 16 -configs 4 -budget 2
//	faultsim -replicas 32 -configs 32 -substrate nakamoto
//	faultsim -replicas 16 -configs 4 -threshold 0.25
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/adversary"
	"repro/internal/bft"
	"repro/internal/committee"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/nakamoto"
	"repro/internal/registry"
	"repro/internal/vuln"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faultsim: ")
	var (
		replicas  = flag.Int("replicas", 16, "fleet size")
		configs   = flag.Int("configs", 4, "distinct configurations (κ), spread round-robin")
		budget    = flag.Int("budget", 2, "adversary exploit budget (distinct vulnerabilities)")
		substrate = flag.String("substrate", "bft", "consensus family: bft, nakamoto, committee")
		threshold = flag.Float64("threshold", 0, "override the family tolerance with a bespoke f in (0,1)")
	)
	flag.Parse()
	if *replicas < 1 || *configs < 1 || *configs > *replicas {
		log.Fatalf("need 1 <= configs (%d) <= replicas (%d)", *configs, *replicas)
	}
	thresholdSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "threshold" {
			thresholdSet = true
		}
	})

	// SIGINT/SIGTERM cancel between stages (timeline, attack plan, worst
	// window); the assessment kernels themselves are uninterruptible.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sub, err := substrateFor(*substrate, *replicas)
	if err != nil {
		log.Fatal(err)
	}
	opts := []core.Option{core.WithSubstrate(sub)}
	if thresholdSet {
		opts = append(opts, core.WithThreshold(*threshold))
	}

	reg, catalog, err := buildScenario(*replicas, *configs)
	if err != nil {
		log.Fatal(err)
	}
	mon, err := core.NewMonitor(reg, append(opts, core.WithCatalog(catalog))...)
	if err != nil {
		log.Fatal(err)
	}

	timeline := metrics.NewTable(
		fmt.Sprintf("safety condition over time (n=%d, κ=%d, %s f=%.3f)",
			*replicas, *configs, mon.Substrate().Name(), mon.Threshold()),
		"t (hours)", "entropy", "Σ f_t^i", "safe")
	for _, h := range []int{0, 12, 24, 48, 72, 120} {
		a, err := mon.Assess(time.Duration(h) * time.Hour)
		if err != nil {
			log.Fatal(err)
		}
		timeline.AddRowf(h, a.Diversity.Entropy, a.Injection.TotalFraction, fmt.Sprint(a.Safe))
	}
	fmt.Print(timeline.String())
	if ctx.Err() != nil {
		log.Fatal("interrupted")
	}

	vr, err := reg.VulnReplicas(registry.DefaultWeighting)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := adversary.GreedyExploits(catalog, vr, 24*time.Hour, *budget, mon.Threshold())
	if err != nil {
		log.Fatal(err)
	}
	attack := metrics.NewTable("greedy exploit plan at t=24h", "metric", "value")
	attack.AddRowf("exploits chosen", fmt.Sprint(plan.Chosen))
	attack.AddRowf("compromised power fraction", plan.Fraction)
	attack.AddRowf("breaks threshold", fmt.Sprint(plan.Breaks))
	fmt.Print("\n" + attack.String())
	if ctx.Err() != nil {
		log.Fatal("interrupted")
	}

	worst, err := mon.WorstAssessment(120 * time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworst window: t=%v  Σf=%.3f  safe=%v\n",
		worst.At, worst.Injection.TotalFraction, worst.Safe)
}

// substrateFor maps the -substrate flag to a consensus family. The
// committee family sizes its quorum to the fleet.
func substrateFor(name string, seats int) (core.Substrate, error) {
	switch name {
	case "bft":
		return bft.Substrate(), nil
	case "nakamoto":
		return nakamoto.Substrate(), nil
	case "committee":
		return committee.Substrate(seats)
	default:
		return nil, fmt.Errorf("unknown substrate %q (have bft, nakamoto, committee)", name)
	}
}

// buildScenario spreads n replicas over κ OS configurations round-robin and
// publishes one zero-day per OS product, staggered in time.
func buildScenario(n, kappa int) (*registry.Registry, *vuln.Catalog, error) {
	reg := registry.New(nil, nil)
	for i := 0; i < n; i++ {
		cfg := config.MustNew(config.Component{
			Class:   config.ClassOperatingSystem,
			Name:    fmt.Sprintf("os-%02d", i%kappa),
			Version: "1",
		})
		id := registry.ReplicaID(fmt.Sprintf("replica-%03d", i))
		if err := reg.JoinDeclared(id, cfg, 1, 24*time.Hour); err != nil {
			return nil, nil, err
		}
	}
	catalog := vuln.NewCatalog()
	for c := 0; c < kappa; c++ {
		v := vuln.Vulnerability{
			ID:        vuln.ID(fmt.Sprintf("CVE-os-%02d", c)),
			Class:     config.ClassOperatingSystem,
			Product:   fmt.Sprintf("os-%02d", c),
			Disclosed: time.Duration(12+6*c) * time.Hour,
			PatchAt:   time.Duration(36+6*c) * time.Hour,
			Severity:  1,
		}
		if err := catalog.Add(v); err != nil {
			return nil, nil, err
		}
	}
	return reg, catalog, nil
}
