// Benchmarks for the paper reproduction. BenchmarkExperiments iterates
// the experiment registry (internal/experiment) — the same index
// cmd/experiments prints — so every registered table and figure is timed
// and the two surfaces cannot drift. The remaining benchmarks isolate the
// substrate hot paths (BFT commit, PoW simulation, entropy, selection,
// attestation, gossip). Run with
//
//	go test -bench=. -benchmem
//
// and use cmd/experiments to print the tables themselves.
package repro

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/assessbench"
	"repro/internal/attest"
	"repro/internal/bft"
	"repro/internal/committee"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/experiment"
	"repro/internal/gossip"
	"repro/internal/nakamoto"
	"repro/internal/planner"
	"repro/internal/pooldata"
	"repro/internal/registry"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vuln"
)

// -scale-full adds the 1M-replica rungs to BenchmarkAssessScale. CI runs
// the ladder up to 100k; the million-replica rungs are an explicit local
// opt-in (they also back the committed BENCH_assess.json, via
// cmd/assessbench -full).
var scaleFull = flag.Bool("scale-full", false, "include 1M-replica rungs in BenchmarkAssessScale")

// --- paper artefacts, via the experiment registry ---

// BenchmarkExperiments times one full regeneration of every registered
// experiment, at bench-scale parameters (fewer Monte Carlo trials and a
// shorter Figure 1 tail than the published defaults).
func BenchmarkExperiments(b *testing.B) {
	params := experiment.Params{Seed: 7, Trials: 2000, Scale: 200}
	ctx := context.Background()
	for _, e := range experiment.All() {
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := e.Run(ctx, params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- substrate micro/meso benchmarks ---

// BenchmarkAttestQuote times one full attestation round trip (X3): quote
// issue + authority verification + vote binding.
func BenchmarkAttestQuote(b *testing.B) {
	dev, err := attest.NewDevice("tpm2", 1)
	if err != nil {
		b.Fatal(err)
	}
	auth := attest.NewAuthority("tpm2")
	vote := cryptoutil.DeriveKeyPair("bench/vote", 0)
	cfg := config.DefaultCatalog().RandomConfiguration(rand.New(rand.NewSource(1)))
	msg := []byte("PREPARE v=0 seq=1")
	sig := vote.Sign(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := dev.QuoteConfig(cfg, vote.Public, auth.IssueNonce())
		if err != nil {
			b.Fatal(err)
		}
		if err := auth.Verify(q); err != nil {
			b.Fatal(err)
		}
		if err := attest.VerifyVoteBinding(q, msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBFTCommit measures one weighted-BFT consensus instance at
// several cluster sizes (the Prop. 3 overhead axis in isolation).
func BenchmarkBFTCommit(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sched := sim.NewScheduler(int64(i))
				net, err := simnet.New(sched, simnet.FixedLatency(5*time.Millisecond), 0)
				if err != nil {
					b.Fatal(err)
				}
				weights := make([]float64, n)
				for j := range weights {
					weights[j] = 1
				}
				cl, err := bft.NewCluster(net, bft.Config{Weights: weights})
				if err != nil {
					b.Fatal(err)
				}
				cl.Submit([]byte("bench"))
				if err := sched.Run(10 * time.Second); err != nil {
					b.Fatal(err)
				}
				if cl.HonestCommittedCount([]byte("bench")) != n {
					b.Fatal("commit incomplete")
				}
			}
		})
	}
}

// BenchmarkNakamotoSimulate measures the full-network PoW simulation with
// the Example 1 snapshot pools.
func BenchmarkNakamotoSimulate(b *testing.B) {
	pools := make([]nakamoto.Pool, 0, 17)
	for _, p := range pooldata.BitcoinSnapshot() {
		pools = append(pools, nakamoto.Pool{Name: p.Name, Power: p.Share})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := nakamoto.Simulate(nakamoto.Config{
			Pools:         pools,
			BlockInterval: 10 * time.Minute,
			Propagation:   5 * time.Second,
			Seed:          int64(i),
		}, 500)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEntropy measures the core entropy computation on the Figure 1
// worst case (17 pools + 1000 tail miners).
func BenchmarkEntropy(b *testing.B) {
	d, err := pooldata.WithUniformTail(1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Entropy(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCapShares measures the share-capping enforcement policy.
func BenchmarkCapShares(b *testing.B) {
	d, err := pooldata.WithUniformTail(1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CapShares(d, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectDiverse measures diversity-aware committee selection
// through the options-built Selector.
func BenchmarkSelectDiverse(b *testing.B) {
	sel, err := committee.NewSelector(committee.WithStrategy(committee.DiversityAware))
	if err != nil {
		b.Fatal(err)
	}
	var candidates []committee.Candidate
	for cfg := 0; cfg < 16; cfg++ {
		for i := 0; i < 16; i++ {
			candidates = append(candidates, committee.Candidate{
				ID:          fmt.Sprintf("c-%d-%d", cfg, i),
				Stake:       float64(1 + (cfg*i)%7),
				ConfigLabel: fmt.Sprintf("cfg-%d", cfg),
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.Select(candidates, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMerkleRoot measures block-body commitment at 1024 transactions.
func BenchmarkMerkleRoot(b *testing.B) {
	leaves := make([][]byte, 1024)
	for i := range leaves {
		leaves[i] = []byte(fmt.Sprintf("tx-%04d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cryptoutil.MerkleRoot(leaves); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyAssign measures the Lazarus-style planner itself.
func BenchmarkGreedyAssign(b *testing.B) {
	cat := config.DefaultCatalog()
	for i := 0; i < b.N; i++ {
		if _, err := planner.GreedyAssign(cat, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// --- assessment hot path ---

// benchVulnScenario builds the assessment-path workload: a 50-vuln
// catalog over 10 products and n replicas spread across them with
// staggered patch latencies, giving a 30-day horizon a few hundred
// distinct critical instants.
func benchVulnScenario(n int) (*vuln.Catalog, []vuln.Replica) {
	cat := vuln.NewCatalog()
	for i := 0; i < 50; i++ {
		disclosed := time.Duration(i*14) * time.Hour // spread over ~29 days
		v := vuln.Vulnerability{
			ID:        vuln.ID(fmt.Sprintf("CVE-b-%03d", i)),
			Class:     config.ClassOperatingSystem,
			Product:   fmt.Sprintf("os-%d", i%10),
			Disclosed: disclosed,
			PatchAt:   disclosed + 48*time.Hour,
			Severity:  0.2 + 0.2*float64(i%5),
		}
		if err := cat.Add(v); err != nil {
			panic(err)
		}
	}
	replicas := make([]vuln.Replica, n)
	for i := range replicas {
		replicas[i] = vuln.Replica{
			Name: fmt.Sprintf("r-%05d", i),
			Config: config.MustNew(config.Component{
				Class: config.ClassOperatingSystem, Name: fmt.Sprintf("os-%d", i%10), Version: "1",
			}),
			Power:        float64(1 + i%97),
			PatchLatency: time.Duration(i%5) * 12 * time.Hour,
		}
	}
	return cat, replicas
}

// BenchmarkWorstWindow compares the exact event-driven sweep against the
// stepwise baseline it replaced, on 1k replicas, a 50-vuln catalog and a
// 30-day horizon (the stepwise scan samples at 1h). The event sweep must
// be an order of magnitude cheaper in both time and allocations.
func BenchmarkWorstWindow(b *testing.B) {
	cat, replicas := benchVulnScenario(1000)
	const horizon = 30 * 24 * time.Hour
	b.Run("event", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := vuln.WorstWindow(cat, replicas, horizon); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stepwise-1h", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := vuln.WorstWindowStepwise(cat, replicas, horizon, time.Hour); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchMonitor builds a 500-replica registry and a monitor over the bench
// catalog.
func benchMonitor(b *testing.B) (*registry.Registry, *core.Monitor) {
	b.Helper()
	cat, _ := benchVulnScenario(0)
	reg := registry.New(nil, nil)
	for i := 0; i < 500; i++ {
		cfg := config.MustNew(config.Component{
			Class: config.ClassOperatingSystem, Name: fmt.Sprintf("os-%d", i%10), Version: "1",
		})
		id := registry.ReplicaID(fmt.Sprintf("r-%05d", i))
		if err := reg.JoinDeclared(id, cfg, float64(1+i%97), time.Duration(i%5)*12*time.Hour); err != nil {
			b.Fatal(err)
		}
	}
	mon, err := core.NewMonitor(reg, core.WithCatalog(cat))
	if err != nil {
		b.Fatal(err)
	}
	return reg, mon
}

// BenchmarkAssess measures the cold assessment path: every iteration
// mutates the registry (power drift), so the snapshot, diversity report
// and exposure index are rebuilt before the fault picture is evaluated.
func BenchmarkAssess(b *testing.B) {
	reg, mon := benchMonitor(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.SetPower("r-00000", float64(1+i%97)); err != nil {
			b.Fatal(err)
		}
		if _, err := mon.Assess(time.Duration(i%720) * time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWatchTick measures one Watch tick on an unchanged registry —
// the steady-state monitoring cost. With the snapshot cache this is just
// an injector evaluation at the clock instant; it must sit far below
// BenchmarkAssess.
func BenchmarkWatchTick(b *testing.B) {
	_, mon := benchMonitor(b)
	if _, err := mon.Assess(0); err != nil { // warm the snapshot cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mon.Assess(time.Duration(i%720) * time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssessScale is the scale ladder: the four assessment paths at
// 1k/10k/100k (and with -scale-full 1M) replicas × 50/500 vulnerabilities,
// on the shared internal/assessbench workload (32 configuration buckets,
// 97 power classes, 5 patch-latency classes).
//
//   - flat: the pre-bucketing cold path, per-replica exposure rebuild —
//     O(replicas × vulns), the "before" every other row is measured
//     against;
//   - cold: fresh monitor over the bucketed snapshot — O(groups + vulns),
//     population-independent once group counts saturate;
//   - incremental: one mutation + assessment on a live monitor — the O(Δ)
//     journal/delta/patch path;
//   - cached: unchanged registry, pure injector evaluation.
func BenchmarkAssessScale(b *testing.B) {
	sizes := []int{1_000, 10_000, 100_000}
	if *scaleFull {
		sizes = append(sizes, 1_000_000)
	}
	for _, n := range sizes {
		reg, err := assessbench.Registry(n)
		if err != nil {
			b.Fatal(err)
		}
		snap, err := reg.Snapshot(registry.DefaultWeighting)
		if err != nil {
			b.Fatal(err)
		}
		for _, nv := range []int{50, 500} {
			cat, err := assessbench.Catalog(nv)
			if err != nil {
				b.Fatal(err)
			}
			name := func(mode string) string {
				return fmt.Sprintf("n=%d/vulns=%d/%s", n, nv, mode)
			}
			b.Run(name("flat"), func(b *testing.B) {
				replicas := snap.Replicas()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := vuln.Inject(cat, replicas, assessbench.Instant); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(name("cold"), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					mon, err := core.NewMonitor(reg, core.WithCatalog(cat), core.WithSummaryFaults())
					if err != nil {
						b.Fatal(err)
					}
					if _, err := mon.Assess(assessbench.Instant); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(name("incremental"), func(b *testing.B) {
				mon, err := core.NewMonitor(reg, core.WithCatalog(cat), core.WithSummaryFaults())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := mon.Assess(assessbench.Instant); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := reg.SetPower("r-0000000", float64(1+i%assessbench.PowerClasses)); err != nil {
						b.Fatal(err)
					}
					if _, err := mon.Assess(assessbench.Instant); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(name("cached"), func(b *testing.B) {
				mon, err := core.NewMonitor(reg, core.WithCatalog(cat), core.WithSummaryFaults())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := mon.Assess(assessbench.Instant); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := mon.Assess(assessbench.Instant); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAssessChurn interleaves sustained churn with assessments on a
// 10k-replica population: every iteration is one mutation (rotating
// through power drift, migration, and a leave/join pair) followed by one
// assessment — the monitord steady state under heavy churn, where every
// assessment rides the O(Δ) path.
func BenchmarkAssessChurn(b *testing.B) {
	const n = 10_000
	reg, err := assessbench.Registry(n)
	if err != nil {
		b.Fatal(err)
	}
	cat, err := assessbench.Catalog(50)
	if err != nil {
		b.Fatal(err)
	}
	mon, err := core.NewMonitor(reg, core.WithCatalog(cat), core.WithSummaryFaults())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := mon.Assess(assessbench.Instant); err != nil {
		b.Fatal(err)
	}
	cfg := config.MustNew(config.Component{
		Class: config.ClassOperatingSystem, Name: "os-0", Version: "1",
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := registry.ReplicaID(fmt.Sprintf("r-%07d", i%n))
		switch i % 4 {
		case 0:
			if err := reg.SetPower(id, float64(1+i%assessbench.PowerClasses)); err != nil {
				b.Fatal(err)
			}
		case 1:
			if err := reg.Migrate(id, cfg); err != nil {
				b.Fatal(err)
			}
		case 2:
			if err := reg.Leave(id); err != nil {
				b.Fatal(err)
			}
		default:
			// Rejoin the replica the previous iteration removed.
			back := registry.ReplicaID(fmt.Sprintf("r-%07d", (i-1)%n))
			if err := reg.JoinDeclared(back, cfg, float64(1+i%assessbench.PowerClasses), 0); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := mon.Assess(assessbench.Instant); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAssessPathAllocations pins the allocation behaviour the bucketed
// storage bought: reading the membership is one copy with no sorting, and
// a memoized snapshot read allocates nothing at all.
func TestAssessPathAllocations(t *testing.T) {
	reg, err := assessbench.Registry(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Snapshot(registry.DefaultWeighting); err != nil {
		t.Fatal(err)
	}
	// Records: exactly the result slice — no per-call sort scratch (the
	// registry maintains ID order incrementally on mutation).
	if got := testing.AllocsPerRun(20, func() {
		if recs := reg.Records(); len(recs) != 10_000 {
			t.Fatal("short records")
		}
	}); got > 1 {
		t.Fatalf("Records() allocates %.0f objects/op, want ≤ 1", got)
	}
	// Snapshot on a quiet registry: memoized pointer, zero allocations.
	if got := testing.AllocsPerRun(20, func() {
		if _, err := reg.Snapshot(registry.DefaultWeighting); err != nil {
			t.Fatal(err)
		}
	}); got > 0 {
		t.Fatalf("memoized Snapshot allocates %.0f objects/op, want 0", got)
	}
}

// BenchmarkScenario times one full deterministic scenario run per
// library entry: the entire churn + disclosure + adversary timeline,
// every inline assessment and the trace encoding, from the registry the
// CLI and CI iterate.
func BenchmarkScenario(b *testing.B) {
	for _, def := range scenario.All() {
		b.Run(def.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := scenario.Run(def, 42)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Records) == 0 {
					b.Fatal("empty trace")
				}
			}
		})
	}
}

// BenchmarkGossipBroadcast measures epidemic dissemination to 100 nodes.
func BenchmarkGossipBroadcast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sched := sim.NewScheduler(int64(i))
		net, err := simnet.New(sched, simnet.FixedLatency(5*time.Millisecond), 0)
		if err != nil {
			b.Fatal(err)
		}
		o, err := gossip.NewOverlay(net, gossip.Config{Fanout: 6})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			if _, err := o.Join(simnet.NodeID(j), nil); err != nil {
				b.Fatal(err)
			}
		}
		msg, err := o.Publish(0, []byte("block"))
		if err != nil {
			b.Fatal(err)
		}
		if err := sched.Run(10 * time.Second); err != nil {
			b.Fatal(err)
		}
		// Epidemic spread is probabilistic: the overwhelming majority must
		// be reached, but an unlucky seed can strand a few nodes.
		if o.Coverage(msg.ID) < 90 {
			b.Fatalf("coverage %d/100", o.Coverage(msg.ID))
		}
	}
}
