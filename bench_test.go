// Benchmarks regenerating every table and figure of the paper (see the
// per-experiment index in DESIGN.md). Each benchmark times one full
// regeneration of its artefact; run with
//
//	go test -bench=. -benchmem
//
// and use cmd/experiments to print the tables themselves.
package repro

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/bft"
	"repro/internal/committee"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/diversity"
	"repro/internal/experiment"
	"repro/internal/gossip"
	"repro/internal/nakamoto"
	"repro/internal/planner"
	"repro/internal/pooldata"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// --- paper artefacts ---

// BenchmarkFigure1EntropySweep regenerates the Figure 1 series (x=1..1000).
func BenchmarkFigure1EntropySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Figure1(1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExample1BitcoinVsBFT regenerates the Example 1 comparison.
func BenchmarkExample1BitcoinVsBFT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Example1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProp1AbundanceEntropy regenerates the Proposition 1 sweep.
func BenchmarkProp1AbundanceEntropy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Proposition1Table(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProp2UniqueConfigs regenerates the Proposition 2 sweep.
func BenchmarkProp2UniqueConfigs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Proposition2Table(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProp3AbundanceResilience regenerates the Proposition 3 sweep
// (includes real BFT message counting per ω).
func BenchmarkProp3AbundanceResilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Proposition3Table(8, []int{1, 2, 4, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKappaOmegaClassify times the Definitions 1–2 predicates on a
// (κ=64, ω=16) population.
func BenchmarkKappaOmegaClassify(b *testing.B) {
	labels := make([]string, 64)
	for i := range labels {
		labels[i] = fmt.Sprintf("cfg-%03d", i)
	}
	pop, err := diversity.UniformPopulation(64*16, labels)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !pop.IsKappaOmegaOptimal(64, 16, 1e-9) {
			b.Fatal("misclassified")
		}
	}
}

// --- extension experiments ---

// BenchmarkSafetyViolationVsEntropy runs the X1 fault-injection matrix
// (six BFT clusters, equivocation attack each).
func BenchmarkSafetyViolationVsEntropy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.SafetyViolationVsEntropy(12, []int{1, 2, 3, 4, 6, 12}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTwoTierWeighting runs the X2 discount sweep.
func BenchmarkTwoTierWeighting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.TwoTierWeighting([]float64{1, 0.75, 0.5, 0.25, 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAttestQuote times one full attestation round trip (X3): quote
// issue + authority verification + vote binding.
func BenchmarkAttestQuote(b *testing.B) {
	dev, err := attest.NewDevice("tpm2", 1)
	if err != nil {
		b.Fatal(err)
	}
	auth := attest.NewAuthority("tpm2")
	vote := cryptoutil.DeriveKeyPair("bench/vote", 0)
	cfg := config.DefaultCatalog().RandomConfiguration(rand.New(rand.NewSource(1)))
	msg := []byte("PREPARE v=0 seq=1")
	sig := vote.Sign(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := dev.QuoteConfig(cfg, vote.Public, auth.IssueNonce())
		if err != nil {
			b.Fatal(err)
		}
		if err := auth.Verify(q); err != nil {
			b.Fatal(err)
		}
		if err := attest.VerifyVoteBinding(q, msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDoubleSpendVsCompromise runs the X4 pool-compromise matrix.
func BenchmarkDoubleSpendVsCompromise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.DoubleSpendVsCompromise([]int{1, 2}, []int{1, 6}, 2000, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCommitteeDiversity runs the X5 selection comparison.
func BenchmarkCommitteeDiversity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.CommitteeDiversity([]int{16, 32, 64}, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdmissionPolicyAblation runs the admission-policy ablation.
func BenchmarkAdmissionPolicyAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.AdmissionAblation(500, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro/meso benchmarks ---

// BenchmarkBFTCommit measures one weighted-BFT consensus instance at
// several cluster sizes (the Prop. 3 overhead axis in isolation).
func BenchmarkBFTCommit(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sched := sim.NewScheduler(int64(i))
				net, err := simnet.New(sched, simnet.FixedLatency(5*time.Millisecond), 0)
				if err != nil {
					b.Fatal(err)
				}
				weights := make([]float64, n)
				for j := range weights {
					weights[j] = 1
				}
				cl, err := bft.NewCluster(net, bft.Config{Weights: weights})
				if err != nil {
					b.Fatal(err)
				}
				cl.Submit([]byte("bench"))
				if err := sched.Run(10 * time.Second); err != nil {
					b.Fatal(err)
				}
				if cl.HonestCommittedCount([]byte("bench")) != n {
					b.Fatal("commit incomplete")
				}
			}
		})
	}
}

// BenchmarkNakamotoSimulate measures the full-network PoW simulation with
// the Example 1 snapshot pools.
func BenchmarkNakamotoSimulate(b *testing.B) {
	pools := make([]nakamoto.Pool, 0, 17)
	for _, p := range pooldata.BitcoinSnapshot() {
		pools = append(pools, nakamoto.Pool{Name: p.Name, Power: p.Share})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := nakamoto.Simulate(nakamoto.Config{
			Pools:         pools,
			BlockInterval: 10 * time.Minute,
			Propagation:   5 * time.Second,
			Seed:          int64(i),
		}, 500)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEntropy measures the core entropy computation on the Figure 1
// worst case (17 pools + 1000 tail miners).
func BenchmarkEntropy(b *testing.B) {
	d, err := pooldata.WithUniformTail(1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Entropy(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCapShares measures the share-capping enforcement policy.
func BenchmarkCapShares(b *testing.B) {
	d, err := pooldata.WithUniformTail(1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CapShares(d, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectDiverse measures diversity-aware committee selection.
func BenchmarkSelectDiverse(b *testing.B) {
	var candidates []committee.Candidate
	for cfg := 0; cfg < 16; cfg++ {
		for i := 0; i < 16; i++ {
			candidates = append(candidates, committee.Candidate{
				ID:          fmt.Sprintf("c-%d-%d", cfg, i),
				Stake:       float64(1 + (cfg*i)%7),
				ConfigLabel: fmt.Sprintf("cfg-%d", cfg),
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := committee.SelectDiverse(candidates, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMerkleRoot measures block-body commitment at 1024 transactions.
func BenchmarkMerkleRoot(b *testing.B) {
	leaves := make([][]byte, 1024)
	for i := range leaves {
		leaves[i] = []byte(fmt.Sprintf("tx-%04d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cryptoutil.MerkleRoot(leaves); err != nil {
			b.Fatal(err)
		}
	}
}

// --- mitigation experiments (M1-M3, CHURN) ---

// BenchmarkPatchLatencySweep runs the M1 vulnerability-window sweep.
func BenchmarkPatchLatencySweep(b *testing.B) {
	lats := []time.Duration{0, 24 * time.Hour, 7 * 24 * time.Hour}
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.PatchLatencySweep(lats); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoolSplitting runs the M2 decentralized-pool mitigation.
func BenchmarkPoolSplitting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.PoolSplitting([]int{1, 2, 4, 8, 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelegationCollapse runs the M3 exchange-oligopoly experiment.
func BenchmarkDelegationCollapse(b *testing.B) {
	fr := []float64{0, 0.25, 0.5, 0.75, 0.95}
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.DelegationCollapse(1000, fr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChurnTrajectory runs 30 epochs of join/leave churn with the
// share-capping admission policy.
func BenchmarkChurnTrajectory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.ChurnTrajectory(30, 25, true, 11); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerComparison runs the PLAN assignment-strategy comparison.
func BenchmarkPlannerComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.PlannerComparison(24, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProactiveRecovery runs the M4 rejuvenation-schedule sweep.
func BenchmarkProactiveRecovery(b *testing.B) {
	periods := []time.Duration{24 * time.Hour, 7 * 24 * time.Hour}
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.ProactiveRecovery(periods); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyAssign measures the Lazarus-style planner itself.
func BenchmarkGreedyAssign(b *testing.B) {
	cat := config.DefaultCatalog()
	for i := 0; i < b.N; i++ {
		if _, err := planner.GreedyAssign(cat, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCommitteeEndToEnd runs the X6 full-stack attack experiment.
func BenchmarkCommitteeEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.CommitteeEndToEnd(12, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashrateDrift runs the NT time-varying voting-power trajectory.
func BenchmarkHashrateDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.HashrateDrift(100, 0.1, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGossipBroadcast measures epidemic dissemination to 100 nodes.
func BenchmarkGossipBroadcast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sched := sim.NewScheduler(int64(i))
		net, err := simnet.New(sched, simnet.FixedLatency(5*time.Millisecond), 0)
		if err != nil {
			b.Fatal(err)
		}
		o, err := gossip.NewOverlay(net, gossip.Config{Fanout: 6})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			if _, err := o.Join(simnet.NodeID(j), nil); err != nil {
				b.Fatal(err)
			}
		}
		msg, err := o.Publish(0, []byte("block"))
		if err != nil {
			b.Fatal(err)
		}
		if err := sched.Run(10 * time.Second); err != nil {
			b.Fatal(err)
		}
		// Epidemic spread is probabilistic: the overwhelming majority must
		// be reached, but an unlucky seed can strand a few nodes.
		if o.Coverage(msg.ID) < 90 {
			b.Fatalf("coverage %d/100", o.Coverage(msg.ID))
		}
	}
}
